//! The serial-matcher timing walk.

use crate::config::CpuConfig;
use ac_core::stt::STT_COLUMNS;
use ac_core::Stt;
use mem_sim::{Cache, CacheStats};
use serde::{Deserialize, Serialize};

/// Result of simulating the serial matcher over one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuRunReport {
    /// Total modelled cycles.
    pub cycles: u64,
    /// Input length in bytes.
    pub bytes: usize,
    /// Matching states entered (output-expansion work indicator).
    pub match_states: u64,
    /// L1D statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
}

impl CpuRunReport {
    /// Modelled wall time in seconds.
    pub fn seconds(&self, cfg: &CpuConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }

    /// Modelled throughput in Gbit/s.
    pub fn gbps(&self, cfg: &CpuConfig) -> f64 {
        cfg.gbps(self.bytes, self.cycles)
    }
}

/// Address-space layout of the modelled process: the input buffer starts at
/// a large offset so it never aliases STT lines in the set-indexed caches.
const STT_BASE: u64 = 0;
const INPUT_BASE: u64 = 1 << 40;

/// Simulate the paper's serial matcher (single core) over `text`.
///
/// Walks the *real* DFA over the *real* input, feeding every memory
/// reference through the modelled L1/L2:
///
/// * one sequential input-byte read per position,
/// * one STT entry read per position at `(state_row, 1 + symbol)` —
///   the next-state lookup of paper Fig. 2,
/// * one STT match-flag read per position at `(next_row, 0)`.
///
/// Cost per byte = `base_cycles_per_byte` + miss penalties.
pub fn simulate_serial(cfg: &CpuConfig, stt: &Stt, text: &[u8]) -> CpuRunReport {
    let mut l1 = Cache::new(cfg.l1);
    let mut l2 = Cache::new(cfg.l2);
    let mut cycles: u64 = 0;
    let mut match_states: u64 = 0;
    let mut state = 0u32;

    let touch = |addr: u64, l1: &mut Cache, l2: &mut Cache| -> u64 {
        if l1.access(addr).is_hit() {
            0
        } else if l2.access(addr).is_hit() {
            cfg.l1_miss_cycles as u64
        } else {
            (cfg.l1_miss_cycles + cfg.l2_miss_cycles) as u64
        }
    };

    for (i, &b) in text.iter().enumerate() {
        cycles += cfg.base_cycles_per_byte as u64;
        // Input byte (sequential; one miss per line).
        cycles += touch(INPUT_BASE + i as u64, &mut l1, &mut l2);
        // Next-state entry.
        let entry = STT_BASE + (state as u64 * STT_COLUMNS as u64 + 1 + b as u64) * 4;
        cycles += touch(entry, &mut l1, &mut l2);
        state = stt.next(state, b);
        // Match flag of the state just entered (column 0).
        let flag = STT_BASE + state as u64 * STT_COLUMNS as u64 * 4;
        cycles += touch(flag, &mut l1, &mut l2);
        if stt.is_match(state) {
            match_states += 1;
            // Output expansion: short, mostly-cached work.
            cycles += 8;
        }
    }

    CpuRunReport {
        cycles,
        bytes: text.len(),
        match_states,
        l1: l1.stats(),
        l2: l2.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{AcAutomaton, PatternSet};

    fn stt_for(pats: &[&str]) -> Stt {
        AcAutomaton::build(&PatternSet::from_strs(pats).unwrap())
            .stt()
            .clone()
    }

    fn text(n: usize) -> Vec<u8> {
        // Deterministic English-ish junk.
        let sample = b"the quick brown fox hers he she his ";
        (0..n).map(|i| sample[i % sample.len()]).collect()
    }

    #[test]
    fn empty_text_costs_nothing() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let r = simulate_serial(&cfg, &stt_for(&["he"]), b"");
        assert_eq!(r.cycles, 0);
        assert_eq!(r.bytes, 0);
        assert_eq!(r.gbps(&cfg), 0.0);
    }

    #[test]
    fn cycles_scale_roughly_linearly_with_input() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["he", "she", "his", "hers"]);
        let r1 = simulate_serial(&cfg, &stt, &text(10_000));
        let r2 = simulate_serial(&cfg, &stt, &text(20_000));
        let ratio = r2.cycles as f64 / r1.cycles as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_automaton_is_cache_resident() {
        // 10 states × ~1 KB of rows fits easily in L1: after warmup the
        // hit rate must be very high and per-byte cost near base.
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["he", "she", "his", "hers"]);
        let t = text(200_000);
        let r = simulate_serial(&cfg, &stt, &t);
        assert!(r.l1.hit_rate() > 0.98, "hit rate {}", r.l1.hit_rate());
        // Per-byte cost ≈ base + match-expansion work (this sample text is
        // match-dense) + a small miss term; nowhere near the miss-dominated
        // regime of a large automaton.
        let per_byte = r.cycles as f64 / t.len() as f64;
        assert!(
            per_byte < cfg.base_cycles_per_byte as f64 + 6.0,
            "per byte {per_byte}"
        );
    }

    #[test]
    fn large_automaton_degrades_throughput() {
        // The paper's mechanism: more patterns → bigger STT → more cache
        // misses → lower serial throughput (Figs. 13/16).
        let cfg = CpuConfig::core2duo_2_2ghz();
        let small = stt_for(&["qq", "zz"]);
        let many: Vec<String> = (0..3000)
            .map(|i| format!("{:04x}{:03}", i * 2654435761u64 % 65536, i % 971))
            .collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        let big = stt_for(&refs);
        assert!(
            big.size_bytes() > 4 * 1024 * 1024,
            "table only {} bytes",
            big.size_bytes()
        );
        let t = text(300_000);
        let fast = simulate_serial(&cfg, &small, &t);
        let slow = simulate_serial(&cfg, &big, &t);
        assert!(
            slow.cycles > fast.cycles,
            "big-table walk not slower: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn match_states_counted() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["he"]);
        let r = simulate_serial(&cfg, &stt, b"he he he");
        assert_eq!(r.match_states, 3);
    }

    #[test]
    fn report_units() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let r = CpuRunReport {
            cycles: 2_200_000_000,
            bytes: 440_000_000,
            match_states: 0,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
        };
        assert!((r.seconds(&cfg) - 1.0).abs() < 1e-9);
        assert!((r.gbps(&cfg) - 3.52).abs() < 0.01);
    }
}
