//! CPU model parameters.

use mem_sim::CacheConfig;
use serde::{Deserialize, Serialize};

/// Parameters of the modelled in-order core and its cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Cycles of pure instruction work per input byte (byte load issue,
    /// index arithmetic, table load issue, match-flag test, loop
    /// overhead) when everything hits in L1.
    pub base_cycles_per_byte: u32,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Extra cycles for an L1 miss served by L2.
    pub l1_miss_cycles: u32,
    /// Extra cycles for an L2 miss served by DRAM.
    pub l2_miss_cycles: u32,
}

impl CpuConfig {
    /// The paper's baseline: "2.2Ghz Core2Duo 4" with 2 GB of memory.
    /// Geometry follows the Core 2 family: 32 KB 8-way L1D with 64-byte
    /// lines, 4 MB 16-way shared L2, ~14-cycle L1 miss, ~165-cycle memory
    /// access at 2.2 GHz.
    pub fn core2duo_2_2ghz() -> Self {
        CpuConfig {
            clock_hz: 2.2e9,
            base_cycles_per_byte: 5,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                associativity: 8,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 64,
                associativity: 16,
            },
            // Effective (not raw) penalties: the Core 2's prefetchers and
            // out-of-order window overlap a large fraction of the raw
            // ~14/~165-cycle latencies on this streaming workload.
            l1_miss_cycles: 10,
            l2_miss_cycles: 100,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_hz <= 0.0 {
            return Err("clock_hz must be positive".into());
        }
        if self.base_cycles_per_byte == 0 {
            return Err("base_cycles_per_byte must be at least 1".into());
        }
        self.l1.validate().map_err(|e| format!("l1: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        Ok(())
    }

    /// Convert cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Throughput in Gbit/s for `bytes` processed in `cycles`.
    pub fn gbps(&self, bytes: usize, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / self.cycles_to_seconds(cycles) / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cpu_is_valid() {
        let c = CpuConfig::core2duo_2_2ghz();
        c.validate().unwrap();
        assert!((c.clock_hz - 2.2e9).abs() < 1.0);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = CpuConfig::core2duo_2_2ghz();
        c.clock_hz = -1.0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::core2duo_2_2ghz();
        c.base_cycles_per_byte = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::core2duo_2_2ghz();
        c.l1.line_bytes = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn best_case_throughput_is_plausible() {
        // All-hit walk: 2.2e9 / 5 cycles per byte = 440 MB/s = 3.52 Gbps —
        // the right ballpark for a mid-2000s core running table-driven AC.
        let c = CpuConfig::core2duo_2_2ghz();
        let bytes = 1_000_000usize;
        let cycles = bytes as u64 * c.base_cycles_per_byte as u64;
        let g = c.gbps(bytes, cycles);
        assert!(g > 2.0 && g < 5.0, "got {g}");
    }
}
