//! Multicore CPU timing model — the "best multithreaded implementation on
//! a multicore processor" baseline of the paper's related work (Zha &
//! Sahni report their GPU at 2.4–3.2× over it).
//!
//! Models the paper's 4-core 2.2 GHz processor running the chunked
//! matcher: each core walks its own chunk (with the X overlap) through a
//! private L1, while all cores share the L2 — modelled, under the
//! independent-core simulation used here, as each core seeing a
//! `1/cores` capacity slice for its (mostly disjoint) input stream plus
//! the shared STT hot set. Wall time is the slowest core; scaling is
//! sublinear exactly when the shared L2 is the constraint, which is what
//! real Core 2 machines showed on this workload.

use crate::config::CpuConfig;
use crate::model::{simulate_serial, CpuRunReport};
use ac_core::Stt;
use serde::{Deserialize, Serialize};

/// Result of the multicore model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticoreReport {
    /// Per-core reports (chunked; the overlap bytes are double-scanned
    /// exactly as a real chunked run double-scans them).
    pub cores: Vec<CpuRunReport>,
    /// Wall cycles = slowest core.
    pub cycles: u64,
    /// Input bytes (owned, not counting overlap rescans).
    pub bytes: usize,
}

impl MulticoreReport {
    /// Modelled wall seconds.
    pub fn seconds(&self, cfg: &CpuConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }

    /// Modelled throughput in Gbit/s.
    pub fn gbps(&self, cfg: &CpuConfig) -> f64 {
        cfg.gbps(self.bytes, self.cycles)
    }

    /// Speedup over a given serial run.
    pub fn speedup_over(&self, serial: &CpuRunReport) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        serial.cycles as f64 / self.cycles as f64
    }
}

/// Simulate `cores` cores scanning `text` in equal chunks with `overlap`
/// extra bytes per chunk.
pub fn simulate_multicore(
    cfg: &CpuConfig,
    stt: &Stt,
    text: &[u8],
    cores: usize,
    overlap: usize,
) -> MulticoreReport {
    assert!(cores >= 1, "at least one core");
    // Shared L2: each core effectively sees a capacity slice. Keep the
    // geometry valid (power-of-two sets) by halving until it fits.
    let mut per_core = *cfg;
    let mut share = cfg.l2.size_bytes / cores.next_power_of_two() as u32;
    share = share.max(cfg.l2.line_bytes * cfg.l2.associativity);
    per_core.l2.size_bytes = share;

    let chunk = text.len().div_ceil(cores).max(1);
    let mut reports = Vec::with_capacity(cores);
    for c in 0..cores {
        let start = (c * chunk).min(text.len());
        let end = ((c + 1) * chunk).min(text.len());
        let scan_end = (end + overlap).min(text.len());
        reports.push(simulate_serial(&per_core, stt, &text[start..scan_end]));
    }
    let cycles = reports.iter().map(|r| r.cycles).max().unwrap_or(0);
    MulticoreReport {
        cores: reports,
        cycles,
        bytes: text.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{AcAutomaton, PatternSet};

    fn stt_for(pats: &[&str]) -> Stt {
        AcAutomaton::build(&PatternSet::from_strs(pats).unwrap())
            .stt()
            .clone()
    }

    fn text(n: usize) -> Vec<u8> {
        let sample = b"the quick brown fox hers he she his ";
        (0..n).map(|i| sample[i % sample.len()]).collect()
    }

    #[test]
    fn four_cores_beat_one_sublinearly() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["he", "she", "his", "hers"]);
        let t = text(400_000);
        let serial = simulate_serial(&cfg, &stt, &t);
        let quad = simulate_multicore(&cfg, &stt, &t, 4, 3);
        let s = quad.speedup_over(&serial);
        assert!(s > 2.0, "speedup {s}");
        assert!(s <= 4.05, "superlinear speedup {s} is implausible");
        assert!((quad.gbps(&cfg) / serial.gbps(&cfg) - s).abs() < 0.05);
    }

    #[test]
    fn one_core_equals_serial() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["he"]);
        let t = text(50_000);
        let serial = simulate_serial(&cfg, &stt, &t);
        let single = simulate_multicore(&cfg, &stt, &t, 1, 1);
        assert_eq!(single.cycles, serial.cycles);
        assert_eq!(single.cores.len(), 1);
    }

    #[test]
    fn large_automaton_scales_worse() {
        // With the STT thrashing the shared L2, per-core slices hurt:
        // 4-core speedup at 3 000 patterns must be below the speedup at 4
        // patterns.
        let cfg = CpuConfig::core2duo_2_2ghz();
        let t = text(300_000);
        let small = stt_for(&["he", "she", "his", "hers"]);
        let many: Vec<String> = (0..3000)
            .map(|i| format!("{:06x}p{i}", i * 2654435761u64 % 16777216))
            .collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        let big = stt_for(&refs);
        let s_small = simulate_multicore(&cfg, &small, &t, 4, 3)
            .speedup_over(&simulate_serial(&cfg, &small, &t));
        let s_big =
            simulate_multicore(&cfg, &big, &t, 4, 8).speedup_over(&simulate_serial(&cfg, &big, &t));
        assert!(
            s_big < s_small + 0.2,
            "cache-bound workload should not scale better: {s_big} vs {s_small}"
        );
    }

    #[test]
    fn empty_text() {
        let cfg = CpuConfig::core2duo_2_2ghz();
        let stt = stt_for(&["x"]);
        let r = simulate_multicore(&cfg, &stt, b"", 4, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.gbps(&cfg), 0.0);
    }
}
