//! # cpu-sim — serial CPU timing model for the paper's baseline
//!
//! The paper's serial baseline runs the AC DFA on one core of a 2.2 GHz
//! Intel Core2-class processor (§V). Its run time grows with the pattern
//! count because the STT stops fitting in cache: at 100 patterns the hot
//! rows live in L1/L2, at 20 000 patterns the table is hundreds of
//! megabytes and most row accesses go to memory. That cache mechanism is
//! what produces the *shape* of paper Figs. 13/16 and the denominators of
//! the speedup figures (Figs. 20–21), so this crate models exactly that:
//!
//! * an in-order core with a fixed per-byte instruction cost,
//! * an L1D + L2 cache hierarchy (from `mem-sim`) walked with the *real*
//!   addresses the serial matcher touches — the sequential input bytes and
//!   the `(state, symbol)` STT entries of the actual DFA walk over the
//!   actual text.
//!
//! The model is calibrated (see [`CpuConfig::core2duo_2_2ghz`]) so that
//! absolute serial throughput lands in the plausible range for the paper's
//! machine (a few Gbit/s at small pattern counts, a few hundred Mbit/s at
//! 20 000 patterns).

pub mod config;
pub mod model;
pub mod multicore;

pub use config::CpuConfig;
pub use model::{simulate_serial, CpuRunReport};
pub use multicore::{simulate_multicore, MulticoreReport};
