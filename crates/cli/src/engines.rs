//! Engine dispatch: run any engine over (automaton, input) and return a
//! uniform report.

use crate::opts::Engine;
use ac_core::{AcAutomaton, Match};
use ac_cpu::ParallelConfig;
use ac_gpu::{Approach, GpuAcMatcher, KernelParams, RunOptions, SuperviseConfig};
use gpu_sim::{FaultPlan, GpuConfig, LaunchStats, TraceBuffer, TraceConfig};
use integration::{ResilientConfig, ResilientMatcher, ResilientRun};
use std::time::Instant;

/// Uniform result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// CLI engine name.
    pub engine: &'static str,
    /// Matches (sorted). Empty when counting.
    pub matches: Vec<Match>,
    /// Total match count (also filled when counting).
    pub count: u64,
    /// Host wall seconds spent (for CPU engines this is the measurement;
    /// for GPU engines it is simulation cost, *not* device time).
    pub host_seconds: f64,
    /// Simulated device seconds (GPU engines only).
    pub device_seconds: Option<f64>,
    /// Simulated device throughput in Gbit/s (GPU engines only).
    pub device_gbps: Option<f64>,
    /// Full launch statistics (GPU engines only).
    pub stats: Option<LaunchStats>,
    /// Recorded trace when one was requested (GPU engines only).
    pub trace: Option<TraceBuffer>,
}

/// The device preset to simulate.
pub fn device(fermi: bool) -> GpuConfig {
    if fermi {
        GpuConfig::fermi_c2050()
    } else {
        GpuConfig::gtx285()
    }
}

/// The approach a GPU engine runs. `None` for the CPU engines and for
/// `gpu:auto`, which picks a layout per workload (see [`run_engine`]).
pub fn gpu_approach(e: Engine) -> Option<Approach> {
    match e {
        Engine::GpuShared => Some(Approach::SharedDiagonal),
        Engine::GpuGlobal => Some(Approach::GlobalOnly),
        Engine::GpuCompressed => Some(Approach::SharedCompressed),
        Engine::GpuBanded => Some(Approach::SharedBanded),
        Engine::GpuTwoLevel => Some(Approach::SharedTwoLevel),
        Engine::GpuPfac => Some(Approach::Pfac),
        Engine::Serial | Engine::Parallel | Engine::GpuAuto => None,
    }
}

/// Execute `engine` over `text`. `trace` arms the cycle-stamped recorder
/// for GPU engines (ignored by CPU engines, which have no device).
pub fn run_engine(
    engine: Engine,
    name: &'static str,
    ac: &AcAutomaton,
    text: &[u8],
    cfg: &GpuConfig,
    count_only: bool,
    trace: Option<TraceConfig>,
) -> Result<EngineReport, String> {
    let started = Instant::now();
    match engine {
        Engine::Serial => {
            let (matches, count) = if count_only {
                (Vec::new(), ac_core::matcher::count_all(ac, text))
            } else {
                let mut m = ac.find_all(text);
                m.sort();
                let c = m.len() as u64;
                (m, c)
            };
            Ok(EngineReport {
                engine: name,
                matches,
                count,
                host_seconds: started.elapsed().as_secs_f64(),
                device_seconds: None,
                device_gbps: None,
                stats: None,
                trace: None,
            })
        }
        Engine::Parallel => {
            let matches = ac_cpu::par_find_all(ac, text, &ParallelConfig::default_for_host())
                .map_err(|e| e.to_string())?;
            let count = matches.len() as u64;
            Ok(EngineReport {
                engine: name,
                matches: if count_only { Vec::new() } else { matches },
                count,
                host_seconds: started.elapsed().as_secs_f64(),
                device_seconds: None,
                device_gbps: None,
                stats: None,
                trace: None,
            })
        }
        _ => {
            let matcher = GpuAcMatcher::new(*cfg, KernelParams::defaults_for(cfg), ac.clone())?;
            let approach = if engine == Engine::GpuAuto {
                // Probe every STT layout on a sample of the input and keep
                // the fastest; print the residency evidence per probe.
                let choice = ac_gpu::pick_layout(&matcher, text).map_err(|e| e.to_string())?;
                let layout = choice.layout;
                eprintln!(
                    "gpu:auto picked the {} layout ({})",
                    layout.label(),
                    choice
                        .probes
                        .iter()
                        .map(|p| format!(
                            "{} {:.0}% L1",
                            p.layout.label(),
                            p.stt_l1_hit_rate * 100.0
                        ))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                layout.approach().expect("picker returns concrete layouts")
            } else {
                gpu_approach(engine).expect("non-CPU engine maps to an approach")
            };
            let mut run = matcher.run_opts(
                text,
                approach,
                RunOptions {
                    record: !count_only,
                    watchdog_cycles: None,
                    trace,
                    introspect: None,
                    attribution: None,
                },
            )?;
            let count = if count_only {
                run.match_events
            } else {
                run.matches.len() as u64
            };
            let device_seconds = Some(run.seconds());
            let device_gbps = Some(run.gbps());
            Ok(EngineReport {
                engine: name,
                matches: std::mem::take(&mut run.matches),
                count,
                host_seconds: started.elapsed().as_secs_f64(),
                device_seconds,
                device_gbps,
                stats: Some(run.stats),
                trace: run.trace,
            })
        }
    }
}

/// Result of a resilient (degrading) run.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// The scan outcome: matches, answering tier, degradation trace.
    pub run: ResilientRun,
    /// Host wall seconds spent.
    pub host_seconds: f64,
}

/// Execute the supervised GPU → parallel CPU → serial ladder over `text`.
/// `fault_seed` arms a deterministic fault plan on the GPU rung first;
/// `trace` arms the recorder on the supervised GPU rung.
pub fn run_resilient(
    ac: &AcAutomaton,
    text: &[u8],
    cfg: &GpuConfig,
    fault_seed: Option<u64>,
    trace: Option<TraceConfig>,
) -> ResilientReport {
    let started = Instant::now();
    let matcher = ResilientMatcher::new(
        *cfg,
        KernelParams::defaults_for(cfg),
        ac.clone(),
        ResilientConfig {
            supervise: SuperviseConfig {
                trace,
                ..SuperviseConfig::default()
            },
            ..ResilientConfig::default()
        },
    );
    if let Some(seed) = fault_seed {
        matcher.set_fault_plan(FaultPlan::generate(seed));
    }
    let run = matcher.scan(text);
    ResilientReport {
        run,
        host_seconds: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::PatternSet;

    fn ac() -> AcAutomaton {
        AcAutomaton::build(&PatternSet::from_strs(&["he", "she", "hers"]).unwrap())
    }

    #[test]
    fn all_engines_agree_on_counts() {
        let ac = ac();
        let text = b"ushers she hers and he";
        let cfg = device(false);
        let mut counts = Vec::new();
        for (e, name) in Engine::all() {
            let r = run_engine(e, name, &ac, text, &cfg, false, None).unwrap();
            counts.push((name, r.count));
            // Matches of every engine equal the serial baseline's.
            let mut want = ac.find_all(text);
            want.sort();
            assert_eq!(r.matches, want, "{name}");
        }
        let first = counts[0].1;
        assert!(counts.iter().all(|&(_, c)| c == first), "{counts:?}");
    }

    #[test]
    fn auto_engine_resolves_a_layout_and_agrees_with_serial() {
        let ac = ac();
        let text = b"ushers she hers and he";
        let cfg = device(false);
        let r = run_engine(Engine::GpuAuto, "gpu:auto", &ac, text, &cfg, false, None).unwrap();
        let mut want = ac.find_all(text);
        want.sort();
        assert_eq!(r.matches, want);
        assert!(r.device_gbps.unwrap() > 0.0);
    }

    #[test]
    fn gpu_engines_report_device_time() {
        let ac = ac();
        let cfg = device(false);
        let r = run_engine(
            Engine::GpuShared,
            "gpu:shared",
            &ac,
            b"ushers",
            &cfg,
            false,
            None,
        )
        .unwrap();
        assert!(r.device_seconds.unwrap() > 0.0);
        assert!(r.device_gbps.unwrap() > 0.0);
        assert!(r.stats.is_some());
        assert!(r.trace.is_none());
        let r = run_engine(Engine::Serial, "serial", &ac, b"ushers", &cfg, false, None).unwrap();
        assert!(r.device_seconds.is_none());
        assert!(r.stats.is_none());
    }

    #[test]
    fn gpu_engine_carries_trace_when_armed() {
        let ac = ac();
        let cfg = device(false);
        let r = run_engine(
            Engine::GpuShared,
            "gpu:shared",
            &ac,
            b"ushers",
            &cfg,
            false,
            Some(TraceConfig::default()),
        )
        .unwrap();
        let tb = r.trace.expect("trace requested");
        assert!(tb.events().iter().any(|e| e.name == "kernel"));
        // Arming the recorder must not move the simulated clock.
        let plain = run_engine(
            Engine::GpuShared,
            "gpu:shared",
            &ac,
            b"ushers",
            &cfg,
            false,
            None,
        )
        .unwrap();
        assert_eq!(r.stats, plain.stats);
    }

    #[test]
    fn fermi_device_differs() {
        assert_ne!(device(true).num_sms, device(false).num_sms);
    }

    #[test]
    fn resilient_run_agrees_with_serial_even_under_faults() {
        let ac = ac();
        let text = b"ushers she hers and he";
        let cfg = device(false);
        let mut want = ac.find_all(text);
        want.sort();
        let clean = run_resilient(&ac, text, &cfg, None, None);
        assert_eq!(clean.run.matches, want);
        assert_eq!(clean.run.tier.label(), "gpu");
        let faulted = run_resilient(&ac, text, &cfg, Some(3), None);
        assert_eq!(faulted.run.matches, want);
        let traced = run_resilient(&ac, text, &cfg, None, Some(TraceConfig::default()));
        assert_eq!(traced.run.matches, want);
        assert!(traced.run.trace.is_some());
    }

    #[test]
    fn count_only_skips_matches() {
        let ac = ac();
        let cfg = device(false);
        let r = run_engine(Engine::Serial, "serial", &ac, b"he he", &cfg, true, None).unwrap();
        assert!(r.matches.is_empty());
        assert_eq!(r.count, 2);
    }
}
