//! Argument parsing (dependency-free, fully unit-tested).

use std::fmt;
use std::path::PathBuf;

/// Which matching engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Single-threaded DFA walk on the host.
    Serial,
    /// Multithreaded chunked matcher (scoped threads).
    Parallel,
    /// Simulated-GPU kernel: the paper's shared-memory kernel.
    GpuShared,
    /// Simulated-GPU kernel: global-memory-only.
    GpuGlobal,
    /// Simulated-GPU kernel: compressed-STT (bitmap rows).
    GpuCompressed,
    /// Simulated-GPU kernel: failure-banded STT (fat-pointer records —
    /// per-state padded band of deviations from the failure state, any
    /// transition attempt one texture fetch).
    GpuBanded,
    /// Simulated-GPU kernel: two-level STT (hot states dense, cold bitmap).
    GpuTwoLevel,
    /// Simulated GPU with the STT layout auto-picked per workload.
    GpuAuto,
    /// Simulated-GPU kernel: failureless PFAC.
    GpuPfac,
}

impl Engine {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "serial" => Ok(Engine::Serial),
            "parallel" => Ok(Engine::Parallel),
            "gpu:shared" => Ok(Engine::GpuShared),
            "gpu:global" => Ok(Engine::GpuGlobal),
            "gpu:compressed" => Ok(Engine::GpuCompressed),
            "gpu:banded" => Ok(Engine::GpuBanded),
            "gpu:twolevel" => Ok(Engine::GpuTwoLevel),
            "gpu:auto" => Ok(Engine::GpuAuto),
            "gpu:pfac" => Ok(Engine::GpuPfac),
            other => Err(ParseError(format!(
                "unknown engine '{other}' (serial, parallel, gpu:shared, gpu:global, \
                 gpu:compressed, gpu:banded, gpu:twolevel, gpu:auto, gpu:pfac)"
            ))),
        }
    }

    /// All engines with their CLI names (for `compare`). `gpu:auto` is
    /// excluded: it resolves to one of the concrete layouts per workload,
    /// so it would only duplicate a row.
    pub fn all() -> [(Engine, &'static str); 8] {
        [
            (Engine::Serial, "serial"),
            (Engine::Parallel, "parallel"),
            (Engine::GpuShared, "gpu:shared"),
            (Engine::GpuGlobal, "gpu:global"),
            (Engine::GpuCompressed, "gpu:compressed"),
            (Engine::GpuBanded, "gpu:banded"),
            (Engine::GpuTwoLevel, "gpu:twolevel"),
            (Engine::GpuPfac, "gpu:pfac"),
        ]
    }
}

/// Parsed subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Match and print occurrences (or just the count).
    Match,
    /// Print automaton structure statistics.
    Stats,
    /// Emit the machine as Graphviz DOT.
    Dot,
    /// Run every engine and print a comparison table.
    Compare,
    /// Sweep kernel configurations and print per-config stall breakdowns.
    Profile,
    /// Counterfactual sweep: rerun one kernel with single memory-hierarchy
    /// knobs perturbed and rank what would make it faster.
    Explain,
    /// Compare two committed `BENCH_*.json` reports under regression
    /// thresholds (`acsim bench diff OLD NEW`).
    BenchDiff,
    /// Replay a synthetic open-loop serving workload through the batched
    /// multi-stream server and print the ServeReport.
    ServeSim,
    /// Replay the serving workload through a multi-device fleet (sharded
    /// dispatch, calibrated CPU/GPU cost routing, shared-bus contention)
    /// and print the FleetReport.
    FleetSim,
    /// Render an incident narrative from a serve telemetry trace
    /// (`acsim slo-report TRACE.json`).
    SloReport,
    /// Run one kernel with workload attribution armed and print the top-K
    /// hottest DFA states and patterns by charged cycles.
    Hot,
}

/// Full parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// The subcommand.
    pub command: Command,
    /// Dictionary file (one pattern per line; `\xNN` escapes allowed).
    pub patterns: PathBuf,
    /// Input file to scan (required by `match`/`compare`, optional for
    /// `stats`).
    pub input: Option<PathBuf>,
    /// Engine for `match`.
    pub engine: Engine,
    /// Count only (skip printing individual matches).
    pub count_only: bool,
    /// Simulated device: `gtx285` (default) or `fermi`.
    pub fermi: bool,
    /// Limit on printed matches.
    pub limit: usize,
    /// Use the resilient front-end (supervised GPU with CPU degradation)
    /// instead of a single engine (`match` only).
    pub resilient: bool,
    /// Seed for a deterministic fault plan armed on the resilient GPU rung.
    pub fault_seed: Option<u64>,
    /// Write a Chrome trace-event JSON of the run here (`match` only;
    /// needs a device to trace, so requires a GPU engine or --resilient).
    pub trace_out: Option<PathBuf>,
    /// Write a flat metrics snapshot here: Prometheus text when the path
    /// ends in `.prom`/`.txt`, JSON otherwise (`match` only; GPU engine or
    /// --resilient).
    pub metrics_out: Option<PathBuf>,
    /// Emit machine-readable JSON instead of the text table (`profile`).
    pub json: bool,
    /// Baseline report for `bench diff`.
    pub bench_old: Option<PathBuf>,
    /// Candidate report for `bench diff`.
    pub bench_new: Option<PathBuf>,
    /// Write the `bench diff` report JSON here (CI artifact).
    pub report_out: Option<PathBuf>,
    /// Write the `explain` hot-row fetch counts as CSV here.
    pub csv_out: Option<PathBuf>,
    /// `bench diff` throughput-drop threshold in per-mille (50 = 5%).
    /// Stored as an integer so `Options` stays `Eq`.
    pub gbps_drop_pm: Option<u32>,
    /// `bench diff` cycle-rise threshold in per-mille.
    pub cycles_rise_pm: Option<u32>,
    /// `bench diff` stall-mix shift threshold in tenths of a percentage
    /// point (100 = 10 pts).
    pub stall_shift_dpts: Option<u32>,
    /// `serve-sim` jobs to generate.
    pub serve_jobs: u64,
    /// `serve-sim` mean arrival rate, jobs per simulated second. Stored as
    /// an integer so `Options` stays `Eq`.
    pub serve_rate: u64,
    /// `serve-sim` stream count.
    pub serve_streams: u32,
    /// `serve-sim` workload seed.
    pub serve_seed: u64,
    /// `serve-sim` nominal job payload bytes.
    pub serve_job_bytes: usize,
    /// `serve-sim` bounded-queue capacity.
    pub serve_queue_cap: usize,
    /// `serve-sim`: per-job launches instead of adaptive batching.
    pub serve_no_batch: bool,
    /// `serve-sim`: run the seeded chaos soak (fault storm + invariants)
    /// instead of a single clean run. Seeded by `--fault-seed`.
    pub serve_chaos: bool,
    /// `serve-sim`: per-job deadline, microseconds after arrival
    /// (overdue queued jobs expire as typed outcomes).
    pub serve_deadline_us: Option<u64>,
    /// `serve-sim`: SLO p99 target in microseconds; arms the admission
    /// controller (low-priority shedding + adaptive batch window).
    pub serve_p99_target_us: Option<u64>,
    /// `serve-sim`/`fleet-sim`: lease per-batch device buffers from a
    /// size-classed pool with pinned host staging (the steady-state
    /// configuration).
    pub serve_pool: bool,
    /// `serve-sim`/`fleet-sim`: arm the pool in churn mode — alloc/free
    /// per batch through pageable host memory (the baseline the pool is
    /// measured against).
    pub serve_pool_churn: bool,
    /// Write the run's device-pool statistics as JSON here (requires
    /// --pool or --pool-churn).
    pub pool_stats_out: Option<PathBuf>,
    /// `fleet-sim` device count.
    pub fleet_devices: u32,
    /// `fleet-sim`: parity dispatch (argmin stream) instead of the
    /// calibrated cost router.
    pub fleet_no_routing: bool,
    /// `fleet-sim`: scatter jobs at least this large across all devices
    /// as overlap-padded shards.
    pub fleet_shard_bytes: Option<usize>,
    /// Telemetry trace to summarise (`slo-report`).
    pub slo_trace: Option<PathBuf>,
    /// `hot`: number of states/patterns to print.
    pub top: usize,
    /// `hot`: write the per-state cycle profile as folded stacks here
    /// (trie root path as the stack; feed to flamegraph tooling).
    pub folded_out: Option<PathBuf>,
}

/// A human-readable argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "usage:
  acsim match   --patterns FILE --input FILE [--engine E] [--count] [--fermi] [--limit N]
                [--resilient [--fault-seed N]] [--trace-out FILE] [--metrics-out FILE]
  acsim compare --patterns FILE --input FILE [--fermi]
  acsim stats   --patterns FILE [--input FILE] [--fermi]
  acsim profile --patterns FILE --input FILE [--fermi] [--json]
  acsim explain --patterns FILE --input FILE [--engine gpu:*] [--fermi] [--csv-out FILE]
  acsim bench diff OLD.json NEW.json [--max-gbps-drop PCT] [--max-cycles-rise PCT]
                [--max-stall-shift PTS] [--report FILE]
  acsim serve-sim [--jobs N] [--arrival-rate R] [--streams S] [--seed N]
                [--job-bytes N] [--queue-cap N] [--no-batch] [--deadline-us N]
                [--p99-target-us N] [--pool | --pool-churn] [--pool-stats FILE]
                [--chaos [--fault-seed N]] [--fermi] [--report FILE]
                [--trace-out FILE] [--metrics-out FILE]
  acsim fleet-sim [--devices D] [--no-routing] [--shard-bytes N] [--jobs N]
                [--arrival-rate R] [--streams S] [--seed N] [--job-bytes N]
                [--queue-cap N] [--no-batch] [--deadline-us N] [--p99-target-us N]
                [--pool | --pool-churn] [--pool-stats FILE]
                [--fermi] [--report FILE] [--trace-out FILE] [--metrics-out FILE]
  acsim slo-report TRACE.json
  acsim hot     --patterns FILE --input FILE [--engine gpu:*] [--fermi] [--top N]
                [--json] [--folded-out FILE]
  acsim dot     --patterns FILE
engines: serial | parallel | gpu:shared | gpu:global | gpu:compressed
       | gpu:banded | gpu:twolevel | gpu:auto | gpu:pfac
gpu:auto probes every STT layout on a sample of the input and keeps the
fastest (texture-residency introspection reported as the evidence).
--resilient runs supervised GPU matching that degrades to the CPU engines on
failure; --fault-seed arms a deterministic fault-injection plan (testing aid).
--trace-out writes a Chrome trace-event JSON (load in Perfetto); --metrics-out
writes a metrics snapshot (Prometheus text for .prom/.txt paths, else JSON).
On `match` both need a simulated device (a gpu:* engine or --resilient); on
`serve-sim` they arm end-to-end telemetry — per-job lifecycle spans stitched
above the stream ops plus the sampled metrics registry (with --chaos, the
faulted soak run is the one exported).
`profile` sweeps every GPU kernel and prints per-config stall breakdowns
(--json emits the table as machine-readable JSON).
`explain` reruns one kernel with single memory-hierarchy knobs perturbed and
ranks what would make it faster; --csv-out dumps per-state fetch counts.
`bench diff` compares two BENCH_*.json perf reports and exits non-zero when
the candidate regresses past the thresholds (defaults: 5% / 5% / 10 pts).
`serve-sim` replays a deterministic open-loop workload of small scan jobs
through the batched multi-stream server (--no-batch launches per job;
--arrival-rate is jobs per simulated second) and prints the ServeReport;
--report also writes it as JSON. --deadline-us expires overdue queued jobs
as typed outcomes; --p99-target-us arms SLO admission control (sheds the
lowest priorities, widens the batch window under pressure); --chaos runs
the seeded fault-storm soak on the pinned smoke scenario (load-shaping
flags do not apply; --fault-seed places the storm, --seed reshuffles
payloads) and exits non-zero if any resilience invariant is violated.
--pool leases per-batch device buffers from a size-classed pool with pinned
host staging (steady state); --pool-churn arms the alloc/free-per-batch
baseline through pageable host memory; --pool-stats writes the pool's
hit/miss/high-water statistics as JSON (both also apply to fleet-sim,
one pool per device).
`fleet-sim` replays the same workload through N simulated devices behind one
dispatcher: jobs route to the cheapest tier (each GPU or the host CPU ladder)
via a warmup-calibrated cost model refined online, every h2d/d2h crosses a
shared PCIe-bus arbiter, and --shard-bytes scatters oversized jobs across all
devices as overlap-padded shards merged exactly-once. --devices sets the
fleet size (--streams is per device); --no-routing uses parity dispatch
(least-loaded stream), which at --devices 1 is bit-identical to serve-sim;
--report writes the FleetReport (per-device, per-tier and bus statistics) as
JSON; --trace-out/--metrics-out export fleet telemetry (per-device track
groups, device-tagged breaker transitions).
`slo-report` reads a `serve-sim --trace-out` telemetry trace and renders an
incident narrative: breaker timeline, pressure-counter arcs, admission
decisions, the dominant pattern-cost classes from the attribution replay,
and the worst-latency exemplars per flight-recorder window.
`hot` runs one kernel with per-state workload attribution armed and prints
the top-K hottest DFA states (cycles, texture-miss share, failure share,
trie prefix) and patterns; --folded-out writes the full per-state profile
as folded stacks for flamegraph tooling; --json emits machine-readable
output.";

/// Parse an argument vector (without the program name).
pub fn parse<I, S>(args: I) -> Result<Options, ParseError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut it = args.into_iter();
    let command = match it.next().as_ref().map(|s| s.as_ref()) {
        Some("match") => Command::Match,
        Some("stats") => Command::Stats,
        Some("dot") => Command::Dot,
        Some("compare") => Command::Compare,
        Some("profile") => Command::Profile,
        Some("explain") => Command::Explain,
        Some("bench") => match it.next().as_ref().map(|s| s.as_ref()) {
            Some("diff") => Command::BenchDiff,
            Some(other) => {
                return Err(ParseError(format!(
                    "unknown bench subcommand '{other}' (expected 'diff')\n{USAGE}"
                )))
            }
            None => return Err(ParseError(format!("bench needs a subcommand\n{USAGE}"))),
        },
        Some("serve-sim") => Command::ServeSim,
        Some("fleet-sim") => Command::FleetSim,
        Some("slo-report") => Command::SloReport,
        Some("hot") => Command::Hot,
        Some(other) => return Err(ParseError(format!("unknown command '{other}'\n{USAGE}"))),
        None => return Err(ParseError(USAGE.into())),
    };
    let mut patterns: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut engine = Engine::GpuShared;
    let mut count_only = false;
    let mut fermi = false;
    let mut limit = 20usize;
    let mut resilient = false;
    let mut fault_seed: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut json = false;
    let mut positionals: Vec<PathBuf> = Vec::new();
    let mut report_out: Option<PathBuf> = None;
    let mut csv_out: Option<PathBuf> = None;
    let mut gbps_drop_pm: Option<u32> = None;
    let mut cycles_rise_pm: Option<u32> = None;
    let mut stall_shift_dpts: Option<u32> = None;
    let mut serve_jobs = 512u64;
    let mut serve_rate = 1_600_000u64;
    let mut serve_streams = 4u32;
    let mut serve_seed = 42u64;
    let mut serve_job_bytes = 2048usize;
    let mut serve_queue_cap = 256usize;
    let mut serve_no_batch = false;
    let mut serve_chaos = false;
    let mut serve_deadline_us: Option<u64> = None;
    let mut serve_p99_target_us: Option<u64> = None;
    let mut serve_pool = false;
    let mut serve_pool_churn = false;
    let mut pool_stats_out: Option<PathBuf> = None;
    let mut serve_flag_seen = false;
    let mut fleet_devices = 2u32;
    let mut fleet_no_routing = false;
    let mut fleet_shard_bytes: Option<usize> = None;
    let mut fleet_flag_seen = false;
    let mut top = 10usize;
    let mut top_seen = false;
    let mut folded_out: Option<PathBuf> = None;
    fn number<T: std::str::FromStr>(
        flag: &str,
        raw: Option<impl AsRef<str>>,
    ) -> Result<T, ParseError>
    where
        T::Err: fmt::Display,
    {
        raw.ok_or_else(|| ParseError(format!("{flag} needs a number")))?
            .as_ref()
            .parse()
            .map_err(|e| ParseError(format!("bad {flag}: {e}")))
    }
    // Thresholds arrive as human percentages/points but are stored ×10 as
    // integers so `Options` can stay `Eq`.
    fn tenths(flag: &str, raw: Option<impl AsRef<str>>) -> Result<u32, ParseError> {
        let raw = raw.ok_or_else(|| ParseError(format!("{flag} needs a number")))?;
        let v: f64 = raw
            .as_ref()
            .parse()
            .map_err(|e| ParseError(format!("bad {flag}: {e}")))?;
        if !(0.0..=1000.0).contains(&v) {
            return Err(ParseError(format!("{flag} out of range: {v}")));
        }
        Ok((v * 10.0).round() as u32)
    }
    while let Some(a) = it.next() {
        match a.as_ref() {
            "--patterns" => {
                patterns = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--patterns needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--input" => {
                input = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--input needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--engine" => {
                engine = Engine::parse(
                    it.next()
                        .ok_or_else(|| ParseError("--engine needs a value".into()))?
                        .as_ref(),
                )?
            }
            "--count" => count_only = true,
            "--fermi" => fermi = true,
            "--resilient" => resilient = true,
            "--fault-seed" => {
                fault_seed = Some(
                    it.next()
                        .ok_or_else(|| ParseError("--fault-seed needs a number".into()))?
                        .as_ref()
                        .parse()
                        .map_err(|e| ParseError(format!("bad --fault-seed: {e}")))?,
                )
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--trace-out needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--metrics-out needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--limit" => {
                limit = it
                    .next()
                    .ok_or_else(|| ParseError("--limit needs a number".into()))?
                    .as_ref()
                    .parse()
                    .map_err(|e| ParseError(format!("bad --limit: {e}")))?
            }
            "--json" => json = true,
            "--report" => {
                report_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--report needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--csv-out" => {
                csv_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--csv-out needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--jobs" => {
                serve_jobs = number("--jobs", it.next())?;
                serve_flag_seen = true;
            }
            "--arrival-rate" => {
                serve_rate = number("--arrival-rate", it.next())?;
                serve_flag_seen = true;
            }
            "--streams" => {
                serve_streams = number("--streams", it.next())?;
                serve_flag_seen = true;
            }
            "--seed" => {
                serve_seed = number("--seed", it.next())?;
                serve_flag_seen = true;
            }
            "--job-bytes" => {
                serve_job_bytes = number("--job-bytes", it.next())?;
                serve_flag_seen = true;
            }
            "--queue-cap" => {
                serve_queue_cap = number("--queue-cap", it.next())?;
                serve_flag_seen = true;
            }
            "--no-batch" => {
                serve_no_batch = true;
                serve_flag_seen = true;
            }
            "--chaos" => {
                serve_chaos = true;
                serve_flag_seen = true;
            }
            "--deadline-us" => {
                serve_deadline_us = Some(number("--deadline-us", it.next())?);
                serve_flag_seen = true;
            }
            "--p99-target-us" => {
                serve_p99_target_us = Some(number("--p99-target-us", it.next())?);
                serve_flag_seen = true;
            }
            "--pool" => {
                serve_pool = true;
                serve_flag_seen = true;
            }
            "--pool-churn" => {
                serve_pool_churn = true;
                serve_flag_seen = true;
            }
            "--pool-stats" => {
                pool_stats_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--pool-stats needs a file".into()))?
                        .as_ref(),
                ));
                serve_flag_seen = true;
            }
            "--devices" => {
                fleet_devices = number("--devices", it.next())?;
                fleet_flag_seen = true;
            }
            "--no-routing" => {
                fleet_no_routing = true;
                fleet_flag_seen = true;
            }
            "--shard-bytes" => {
                fleet_shard_bytes = Some(number("--shard-bytes", it.next())?);
                fleet_flag_seen = true;
            }
            "--top" => {
                top = number("--top", it.next())?;
                top_seen = true;
            }
            "--folded-out" => {
                folded_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| ParseError("--folded-out needs a file".into()))?
                        .as_ref(),
                ))
            }
            "--max-gbps-drop" => gbps_drop_pm = Some(tenths("--max-gbps-drop", it.next())?),
            "--max-cycles-rise" => cycles_rise_pm = Some(tenths("--max-cycles-rise", it.next())?),
            "--max-stall-shift" => stall_shift_dpts = Some(tenths("--max-stall-shift", it.next())?),
            other
                if !other.starts_with("--")
                    && matches!(command, Command::BenchDiff | Command::SloReport) =>
            {
                positionals.push(PathBuf::from(other))
            }
            other => return Err(ParseError(format!("unknown flag '{other}'\n{USAGE}"))),
        }
    }
    let slo_trace = if command == Command::SloReport {
        if positionals.len() != 1 {
            return Err(ParseError(format!(
                "slo-report needs exactly one trace path, got {}",
                positionals.len()
            )));
        }
        positionals.pop()
    } else {
        None
    };
    let (bench_old, bench_new) = if command == Command::BenchDiff {
        if positionals.len() != 2 {
            return Err(ParseError(format!(
                "bench diff needs exactly two report paths, got {}",
                positionals.len()
            )));
        }
        let mut p = positionals.into_iter();
        (p.next(), p.next())
    } else {
        (None, None)
    };
    if command != Command::BenchDiff
        && (gbps_drop_pm.is_some() || cycles_rise_pm.is_some() || stall_shift_dpts.is_some())
    {
        return Err(ParseError(
            "--max-gbps-drop/--max-cycles-rise/--max-stall-shift only apply to `bench diff`".into(),
        ));
    }
    if report_out.is_some()
        && !matches!(
            command,
            Command::BenchDiff | Command::ServeSim | Command::FleetSim
        )
    {
        return Err(ParseError(
            "--report only applies to `bench diff`, `serve-sim` and `fleet-sim`".into(),
        ));
    }
    if serve_flag_seen && !matches!(command, Command::ServeSim | Command::FleetSim) {
        return Err(ParseError(
            "--jobs/--arrival-rate/--streams/--seed/--job-bytes/--queue-cap/--no-batch/\
             --chaos/--deadline-us/--p99-target-us/--pool/--pool-churn/--pool-stats only \
             apply to `serve-sim` and `fleet-sim`"
                .into(),
        ));
    }
    if fleet_flag_seen && command != Command::FleetSim {
        return Err(ParseError(
            "--devices/--no-routing/--shard-bytes only apply to `fleet-sim`".into(),
        ));
    }
    if command == Command::FleetSim {
        if fleet_devices == 0 {
            return Err(ParseError("--devices must be positive".into()));
        }
        if fleet_shard_bytes == Some(0) {
            return Err(ParseError("--shard-bytes must be positive".into()));
        }
        if serve_chaos {
            return Err(ParseError(
                "--chaos only applies to `serve-sim` (the soak is single-device)".into(),
            ));
        }
    }
    if matches!(command, Command::ServeSim | Command::FleetSim) {
        if serve_jobs == 0 {
            return Err(ParseError("--jobs must be positive".into()));
        }
        if serve_rate == 0 {
            return Err(ParseError("--arrival-rate must be positive".into()));
        }
        if serve_streams == 0 {
            return Err(ParseError("--streams must be positive".into()));
        }
        if serve_job_bytes == 0 {
            return Err(ParseError("--job-bytes must be positive".into()));
        }
        if serve_deadline_us == Some(0) {
            return Err(ParseError("--deadline-us must be positive".into()));
        }
        if serve_p99_target_us == Some(0) {
            return Err(ParseError("--p99-target-us must be positive".into()));
        }
        if fault_seed.is_some() && !serve_chaos {
            return Err(ParseError(
                "--fault-seed on serve-sim requires --chaos".into(),
            ));
        }
        if serve_pool && serve_pool_churn {
            return Err(ParseError(
                "--pool and --pool-churn are mutually exclusive".into(),
            ));
        }
        if pool_stats_out.is_some() && !serve_pool && !serve_pool_churn {
            return Err(ParseError(
                "--pool-stats requires --pool or --pool-churn".into(),
            ));
        }
        if serve_chaos && (serve_pool || serve_pool_churn) {
            return Err(ParseError(
                "--pool/--pool-churn do not apply to --chaos (the soak pins its own config)".into(),
            ));
        }
    }
    if json && !matches!(command, Command::Profile | Command::Hot) {
        return Err(ParseError(
            "--json only applies to `profile` and `hot`".into(),
        ));
    }
    if (top_seen || folded_out.is_some()) && command != Command::Hot {
        return Err(ParseError("--top/--folded-out only apply to `hot`".into()));
    }
    if command == Command::Hot {
        if top == 0 {
            return Err(ParseError("--top must be positive".into()));
        }
        if matches!(engine, Engine::Serial | Engine::Parallel) {
            return Err(ParseError(
                "hot profiles a simulated-GPU run: use a gpu:* engine".into(),
            ));
        }
    }
    if csv_out.is_some() && command != Command::Explain {
        return Err(ParseError("--csv-out only applies to `explain`".into()));
    }
    if command == Command::Explain && matches!(engine, Engine::Serial | Engine::Parallel) {
        return Err(ParseError(
            "explain perturbs GPU memory-hierarchy knobs: use a gpu:* engine".into(),
        ));
    }
    let patterns = if matches!(
        command,
        Command::BenchDiff | Command::ServeSim | Command::FleetSim | Command::SloReport
    ) {
        // `bench diff` works on committed reports, `serve-sim` and
        // `fleet-sim` extract their dictionary from the synthetic corpus,
        // and `slo-report` reads a recorded trace.
        patterns.unwrap_or_default()
    } else {
        patterns.ok_or_else(|| ParseError("--patterns is required".into()))?
    };
    if matches!(
        command,
        Command::Match | Command::Compare | Command::Profile | Command::Explain | Command::Hot
    ) && input.is_none()
    {
        return Err(ParseError(format!("{command:?} requires --input")));
    }
    if resilient && command != Command::Match {
        return Err(ParseError("--resilient only applies to `match`".into()));
    }
    if fault_seed.is_some() && !resilient && command != Command::ServeSim {
        return Err(ParseError(
            "--fault-seed requires --resilient (or serve-sim --chaos)".into(),
        ));
    }
    if trace_out.is_some() || metrics_out.is_some() {
        if !matches!(
            command,
            Command::Match | Command::ServeSim | Command::FleetSim
        ) {
            return Err(ParseError(
                "--trace-out/--metrics-out only apply to `match`, `serve-sim` and `fleet-sim`"
                    .into(),
            ));
        }
        // `serve-sim`/`fleet-sim` always drive the simulated devices;
        // `match` only does under a gpu:* engine or the resilient ladder.
        let gpu_engine = !matches!(engine, Engine::Serial | Engine::Parallel);
        if command == Command::Match && !gpu_engine && !resilient {
            return Err(ParseError(
                "--trace-out/--metrics-out need a simulated device: use a gpu:* engine or \
                 --resilient"
                    .into(),
            ));
        }
    }
    Ok(Options {
        command,
        patterns,
        input,
        engine,
        count_only,
        fermi,
        limit,
        resilient,
        fault_seed,
        trace_out,
        metrics_out,
        json,
        bench_old,
        bench_new,
        report_out,
        csv_out,
        gbps_drop_pm,
        cycles_rise_pm,
        stall_shift_dpts,
        serve_jobs,
        serve_rate,
        serve_streams,
        serve_seed,
        serve_job_bytes,
        serve_queue_cap,
        serve_no_batch,
        serve_chaos,
        serve_deadline_us,
        serve_p99_target_us,
        serve_pool,
        serve_pool_churn,
        pool_stats_out,
        fleet_devices,
        fleet_no_routing,
        fleet_shard_bytes,
        slo_trace,
        top,
        folded_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Options, ParseError> {
        parse(args.iter().copied())
    }

    #[test]
    fn parses_hot_invocation() {
        let o = p(&[
            "hot",
            "--patterns",
            "d.txt",
            "--input",
            "c.bin",
            "--engine",
            "gpu:banded",
            "--top",
            "3",
            "--json",
            "--folded-out",
            "prof.folded",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Hot);
        assert_eq!(o.engine, Engine::GpuBanded);
        assert_eq!(o.top, 3);
        assert!(o.json);
        assert_eq!(o.folded_out, Some(PathBuf::from("prof.folded")));
    }

    #[test]
    fn hot_flag_scoping() {
        // --top/--folded-out are hot-only.
        assert!(p(&["match", "--patterns", "d", "--input", "c", "--top", "3"]).is_err());
        assert!(p(&["stats", "--patterns", "d", "--folded-out", "f"]).is_err());
        // hot needs an input and a GPU engine, and a positive top.
        assert!(p(&["hot", "--patterns", "d"]).is_err());
        assert!(p(&[
            "hot",
            "--patterns",
            "d",
            "--input",
            "c",
            "--engine",
            "serial"
        ])
        .is_err());
        assert!(p(&["hot", "--patterns", "d", "--input", "c", "--top", "0"]).is_err());
        // --json now also applies to hot.
        assert!(p(&["hot", "--patterns", "d", "--input", "c", "--json"]).is_ok());
    }

    #[test]
    fn parses_full_match_invocation() {
        let o = p(&[
            "match",
            "--patterns",
            "d.txt",
            "--input",
            "c.bin",
            "--engine",
            "gpu:global",
            "--count",
            "--fermi",
            "--limit",
            "5",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Match);
        assert_eq!(o.engine, Engine::GpuGlobal);
        assert!(o.count_only);
        assert!(o.fermi);
        assert_eq!(o.limit, 5);
    }

    #[test]
    fn defaults() {
        let o = p(&["match", "--patterns", "d", "--input", "i"]).unwrap();
        assert_eq!(o.engine, Engine::GpuShared);
        assert!(!o.count_only);
        assert_eq!(o.limit, 20);
    }

    #[test]
    fn stats_without_input_is_fine() {
        let o = p(&["stats", "--patterns", "d"]).unwrap();
        assert_eq!(o.command, Command::Stats);
        assert!(o.input.is_none());
    }

    #[test]
    fn match_requires_input() {
        assert!(p(&["match", "--patterns", "d"]).is_err());
        assert!(p(&["compare", "--patterns", "d"]).is_err());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--engine",
            "tpu"
        ])
        .is_err());
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--wat"]).is_err());
        assert!(p(&[]).is_err());
    }

    #[test]
    fn resilient_flags_parse_and_are_validated() {
        let o = p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--resilient",
            "--fault-seed",
            "42",
        ])
        .unwrap();
        assert!(o.resilient);
        assert_eq!(o.fault_seed, Some(42));

        let o = p(&["match", "--patterns", "d", "--input", "i", "--resilient"]).unwrap();
        assert!(o.resilient);
        assert_eq!(o.fault_seed, None);

        let o = p(&["match", "--patterns", "d", "--input", "i"]).unwrap();
        assert!(!o.resilient);

        // --fault-seed without --resilient is meaningless.
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--fault-seed",
            "1"
        ])
        .is_err());
        // --resilient outside `match` is rejected.
        assert!(p(&["compare", "--patterns", "d", "--input", "i", "--resilient"]).is_err());
        // Bad seed values are rejected.
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--resilient",
            "--fault-seed"
        ])
        .is_err());
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--resilient",
            "--fault-seed",
            "soon",
        ])
        .is_err());
    }

    #[test]
    fn profile_parses_and_requires_input() {
        let o = p(&["profile", "--patterns", "d", "--input", "i", "--fermi"]).unwrap();
        assert_eq!(o.command, Command::Profile);
        assert!(o.fermi);
        assert!(p(&["profile", "--patterns", "d"]).is_err());
    }

    #[test]
    fn trace_and_metrics_flags_parse_and_are_validated() {
        let o = p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.prom",
        ])
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("m.prom"))
        );

        // A CPU engine has no simulated device to observe…
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--engine",
            "serial",
            "--trace-out",
            "t",
        ])
        .is_err());
        // …unless the resilient ladder (whose first rung is the GPU) runs.
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--resilient",
            "--metrics-out",
            "m",
        ])
        .is_ok());
        // Only `match` exports.
        assert!(p(&["stats", "--patterns", "d", "--trace-out", "t"]).is_err());
        assert!(p(&[
            "compare",
            "--patterns",
            "d",
            "--input",
            "i",
            "--metrics-out",
            "m"
        ])
        .is_err());
        // Missing operands are rejected.
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--trace-out"]).is_err());
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--metrics-out"]).is_err());
    }

    #[test]
    fn explain_parses_and_is_validated() {
        let o = p(&["explain", "--patterns", "d", "--input", "i"]).unwrap();
        assert_eq!(o.command, Command::Explain);
        assert_eq!(o.engine, Engine::GpuShared);
        let o = p(&[
            "explain",
            "--patterns",
            "d",
            "--input",
            "i",
            "--engine",
            "gpu:pfac",
            "--csv-out",
            "rows.csv",
        ])
        .unwrap();
        assert_eq!(o.engine, Engine::GpuPfac);
        assert_eq!(o.csv_out.as_deref(), Some(std::path::Path::new("rows.csv")));
        // Needs an input and a GPU engine.
        assert!(p(&["explain", "--patterns", "d"]).is_err());
        assert!(p(&[
            "explain",
            "--patterns",
            "d",
            "--input",
            "i",
            "--engine",
            "serial"
        ])
        .is_err());
        // --csv-out belongs to explain only.
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--csv-out", "x"]).is_err());
    }

    #[test]
    fn bench_diff_parses_paths_and_thresholds() {
        let o = p(&["bench", "diff", "old.json", "new.json"]).unwrap();
        assert_eq!(o.command, Command::BenchDiff);
        assert_eq!(
            o.bench_old.as_deref(),
            Some(std::path::Path::new("old.json"))
        );
        assert_eq!(
            o.bench_new.as_deref(),
            Some(std::path::Path::new("new.json"))
        );
        assert_eq!(o.gbps_drop_pm, None);

        let o = p(&[
            "bench",
            "diff",
            "a.json",
            "b.json",
            "--max-gbps-drop",
            "7.5",
            "--max-cycles-rise",
            "3",
            "--max-stall-shift",
            "12",
            "--report",
            "diff.json",
        ])
        .unwrap();
        assert_eq!(o.gbps_drop_pm, Some(75));
        assert_eq!(o.cycles_rise_pm, Some(30));
        assert_eq!(o.stall_shift_dpts, Some(120));
        assert_eq!(
            o.report_out.as_deref(),
            Some(std::path::Path::new("diff.json"))
        );

        // Exactly two paths; a sane subcommand; flags stay scoped.
        assert!(p(&["bench", "diff", "only-one.json"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "c"]).is_err());
        assert!(p(&["bench"]).is_err());
        assert!(p(&["bench", "run"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--max-gbps-drop", "nope"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--max-gbps-drop", "-2"]).is_err());
        assert!(p(&[
            "match",
            "--patterns",
            "d",
            "--input",
            "i",
            "--max-gbps-drop",
            "5"
        ])
        .is_err());
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--report", "r"]).is_err());
    }

    #[test]
    fn profile_json_flag_is_scoped() {
        let o = p(&["profile", "--patterns", "d", "--input", "i", "--json"]).unwrap();
        assert!(o.json);
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--json"]).is_err());
    }

    #[test]
    fn serve_sim_parses_with_defaults_and_overrides() {
        let o = p(&["serve-sim"]).unwrap();
        assert_eq!(o.command, Command::ServeSim);
        assert_eq!(o.serve_jobs, 512);
        assert_eq!(o.serve_rate, 1_600_000);
        assert_eq!(o.serve_streams, 4);
        assert_eq!(o.serve_seed, 42);
        assert_eq!(o.serve_job_bytes, 2048);
        assert_eq!(o.serve_queue_cap, 256);
        assert!(!o.serve_no_batch);

        let o = p(&[
            "serve-sim",
            "--jobs",
            "100",
            "--arrival-rate",
            "9000",
            "--streams",
            "2",
            "--seed",
            "7",
            "--job-bytes",
            "8192",
            "--queue-cap",
            "16",
            "--no-batch",
            "--fermi",
            "--report",
            "serve.json",
        ])
        .unwrap();
        assert_eq!(o.serve_jobs, 100);
        assert_eq!(o.serve_rate, 9000);
        assert_eq!(o.serve_streams, 2);
        assert_eq!(o.serve_seed, 7);
        assert_eq!(o.serve_job_bytes, 8192);
        assert_eq!(o.serve_queue_cap, 16);
        assert!(o.serve_no_batch);
        assert!(o.fermi);
        assert_eq!(
            o.report_out.as_deref(),
            Some(std::path::Path::new("serve.json"))
        );
    }

    #[test]
    fn serve_sim_flags_are_scoped_and_validated() {
        // Serve flags leak nowhere else.
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--jobs", "3"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--streams", "2"]).is_err());
        assert!(p(&["stats", "--patterns", "d", "--no-batch"]).is_err());
        // Zeroes are rejected.
        assert!(p(&["serve-sim", "--jobs", "0"]).is_err());
        assert!(p(&["serve-sim", "--arrival-rate", "0"]).is_err());
        assert!(p(&["serve-sim", "--streams", "0"]).is_err());
        assert!(p(&["serve-sim", "--job-bytes", "0"]).is_err());
        // Missing operands are rejected.
        assert!(p(&["serve-sim", "--jobs"]).is_err());
        assert!(p(&["serve-sim", "--streams", "many"]).is_err());
    }

    #[test]
    fn serve_sim_resilience_flags_parse_and_are_validated() {
        let o = p(&[
            "serve-sim",
            "--deadline-us",
            "2000",
            "--p99-target-us",
            "800",
        ])
        .unwrap();
        assert_eq!(o.serve_deadline_us, Some(2000));
        assert_eq!(o.serve_p99_target_us, Some(800));
        assert!(!o.serve_chaos);

        let o = p(&["serve-sim", "--chaos", "--fault-seed", "7"]).unwrap();
        assert!(o.serve_chaos);
        assert_eq!(o.fault_seed, Some(7));
        // --chaos without an explicit seed uses the committed default.
        let o = p(&["serve-sim", "--chaos"]).unwrap();
        assert!(o.serve_chaos);
        assert_eq!(o.fault_seed, None);

        // --fault-seed on serve-sim is only meaningful with --chaos.
        assert!(p(&["serve-sim", "--fault-seed", "7"]).is_err());
        // The new flags stay scoped to serve-sim.
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--chaos"]).is_err());
        assert!(p(&["stats", "--patterns", "d", "--deadline-us", "5"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--p99-target-us", "5"]).is_err());
        // Zeroes are rejected.
        assert!(p(&["serve-sim", "--deadline-us", "0"]).is_err());
        assert!(p(&["serve-sim", "--p99-target-us", "0"]).is_err());
    }

    #[test]
    fn pool_flags_parse_and_are_validated() {
        let o = p(&["serve-sim", "--pool", "--pool-stats", "pool.json"]).unwrap();
        assert!(o.serve_pool);
        assert!(!o.serve_pool_churn);
        assert_eq!(
            o.pool_stats_out.as_deref(),
            Some(std::path::Path::new("pool.json"))
        );
        let o = p(&["serve-sim", "--pool-churn"]).unwrap();
        assert!(o.serve_pool_churn && !o.serve_pool);
        // Both apply to fleet-sim too (one pool per device).
        let o = p(&["fleet-sim", "--devices", "2", "--pool"]).unwrap();
        assert!(o.serve_pool);
        assert!(p(&["fleet-sim", "--pool-churn", "--pool-stats", "p.json"]).is_ok());
        // Mutually exclusive modes; stats need an armed pool.
        assert!(p(&["serve-sim", "--pool", "--pool-churn"]).is_err());
        assert!(p(&["serve-sim", "--pool-stats", "p.json"]).is_err());
        // The chaos soak pins its own config.
        assert!(p(&["serve-sim", "--chaos", "--pool"]).is_err());
        // Scoped to the serving simulators only.
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--pool"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--pool-churn"]).is_err());
        assert!(p(&["stats", "--patterns", "d", "--pool-stats", "p"]).is_err());
        // Missing operand is rejected.
        assert!(p(&["serve-sim", "--pool", "--pool-stats"]).is_err());
    }

    #[test]
    fn serve_sim_telemetry_export_flags_parse_and_are_validated() {
        let o = p(&[
            "serve-sim",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.prom",
        ])
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("m.prom"))
        );
        // No device requirement: serve-sim always drives the simulated GPU.
        assert!(p(&["serve-sim", "--chaos", "--trace-out", "t.json"]).is_ok());
        // Still rejected where there is nothing to record.
        assert!(p(&["stats", "--patterns", "d", "--trace-out", "t"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--metrics-out", "m"]).is_err());
    }

    #[test]
    fn fleet_sim_parses_with_defaults_and_overrides() {
        let o = p(&["fleet-sim"]).unwrap();
        assert_eq!(o.command, Command::FleetSim);
        assert_eq!(o.fleet_devices, 2);
        assert!(!o.fleet_no_routing);
        assert_eq!(o.fleet_shard_bytes, None);
        // Serve load-shaping flags carry over (per-device semantics).
        assert_eq!(o.serve_jobs, 512);
        assert_eq!(o.serve_streams, 4);

        let o = p(&[
            "fleet-sim",
            "--devices",
            "4",
            "--no-routing",
            "--shard-bytes",
            "65536",
            "--jobs",
            "128",
            "--streams",
            "1",
            "--report",
            "fleet.json",
            "--trace-out",
            "t.json",
        ])
        .unwrap();
        assert_eq!(o.fleet_devices, 4);
        assert!(o.fleet_no_routing);
        assert_eq!(o.fleet_shard_bytes, Some(65536));
        assert_eq!(o.serve_jobs, 128);
        assert_eq!(o.serve_streams, 1);
        assert_eq!(
            o.report_out.as_deref(),
            Some(std::path::Path::new("fleet.json"))
        );
        assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
    }

    #[test]
    fn fleet_sim_flags_are_scoped_and_validated() {
        // Fleet flags leak nowhere else.
        assert!(p(&["serve-sim", "--devices", "2"]).is_err());
        assert!(p(&["match", "--patterns", "d", "--input", "i", "--no-routing"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--shard-bytes", "4096"]).is_err());
        // Zeroes are rejected, as is the single-device chaos soak.
        assert!(p(&["fleet-sim", "--devices", "0"]).is_err());
        assert!(p(&["fleet-sim", "--shard-bytes", "0"]).is_err());
        assert!(p(&["fleet-sim", "--jobs", "0"]).is_err());
        assert!(p(&["fleet-sim", "--chaos"]).is_err());
        assert!(p(&["fleet-sim", "--fault-seed", "3"]).is_err());
        // Missing operands are rejected.
        assert!(p(&["fleet-sim", "--devices"]).is_err());
    }

    #[test]
    fn slo_report_parses_one_trace_path() {
        let o = p(&["slo-report", "trace.json"]).unwrap();
        assert_eq!(o.command, Command::SloReport);
        assert_eq!(
            o.slo_trace.as_deref(),
            Some(std::path::Path::new("trace.json"))
        );
        // Exactly one path; no stray flags.
        assert!(p(&["slo-report"]).is_err());
        assert!(p(&["slo-report", "a.json", "b.json"]).is_err());
        assert!(p(&["slo-report", "t.json", "--jobs", "5"]).is_err());
        assert!(p(&["slo-report", "t.json", "--trace-out", "x"]).is_err());
    }

    #[test]
    fn every_engine_name_parses() {
        for (e, name) in Engine::all() {
            assert_eq!(Engine::parse(name).unwrap(), e);
        }
        // `gpu:auto` deliberately sits outside `all()` (it duplicates a
        // concrete layout's row) but must still parse.
        assert_eq!(Engine::parse("gpu:auto").unwrap(), Engine::GpuAuto);
        assert!(!Engine::all().iter().any(|&(e, _)| e == Engine::GpuAuto));
    }
}
