//! `acsim` binary: thin shell over `acsim_cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match acsim_cli::opts::parse(args.iter().map(String::as_str)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match acsim_cli::run(&opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
