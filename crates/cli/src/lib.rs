//! # acsim — command-line front end
//!
//! A small, scriptable tool over the reproduction stack: match a
//! dictionary against a file with any of the engines (serial DFA,
//! multithreaded CPU, the simulated-GPU kernels, PFAC), inspect automaton
//! structure, or export the machine as Graphviz.
//!
//! ```text
//! acsim match --patterns dict.txt --input corpus.bin [--engine gpu:shared] [--count]
//! acsim stats --patterns dict.txt [--input corpus.bin]
//! acsim dot   --patterns dict.txt
//! acsim compare --patterns dict.txt --input corpus.bin
//! ```
//!
//! The argument parsing and command execution live in this library so the
//! test suite can drive them without spawning processes; the `acsim`
//! binary is a thin `main`.

pub mod commands;
pub mod engines;
pub mod opts;

pub use commands::run;
pub use opts::{Command, Engine, Options, ParseError};
