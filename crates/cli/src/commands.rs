//! Command execution: load inputs, dispatch, format output.

use crate::engines::{device, run_engine, run_resilient, EngineReport, ResilientReport};
use crate::opts::{Command, Engine, Options};
use ac_core::{analysis, dot, AcAutomaton, NfaTables, PatternSet, Trie};
use std::fmt::Write as _;
use std::path::Path;

/// Run a parsed invocation, returning the text to print.
pub fn run(opts: &Options) -> Result<String, String> {
    let patterns = load_patterns(&opts.patterns)?;
    match opts.command {
        Command::Dot => {
            let trie = Trie::build(&patterns);
            let nfa = NfaTables::build(&trie);
            Ok(dot::nfa_to_dot(&trie, &nfa, &patterns))
        }
        Command::Stats => {
            let ac = AcAutomaton::build(&patterns);
            let mut out = stats_text(&patterns, &ac);
            if let Some(input) = &opts.input {
                let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
                let trie = Trie::build(&patterns);
                let profile = analysis::profile_visits(ac.stt(), &trie, &text);
                let _ = writeln!(out, "\nvisit profile over {} input bytes:", text.len());
                let _ = writeln!(out, "  distinct states visited: {}", profile.distinct_states);
                let _ = writeln!(out, "  mean visited depth:      {:.2}", profile.mean_depth);
                for (k, frac) in &profile.concentration {
                    let _ = writeln!(out, "  top-{k:<5} states cover:  {:.1}%", frac * 100.0);
                }
            }
            Ok(out)
        }
        Command::Match => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            let cfg = device(opts.fermi);
            if opts.resilient {
                let report = run_resilient(&ac, &text, &cfg, opts.fault_seed);
                return Ok(resilient_text(&report, &ac, opts));
            }
            let name = Engine::all()
                .iter()
                .find(|(e, _)| *e == opts.engine)
                .map(|(_, n)| *n)
                .expect("engine table is total");
            let report = run_engine(opts.engine, name, &ac, &text, &cfg, opts.count_only)?;
            Ok(match_text(&report, &ac, opts))
        }
        Command::Compare => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            let cfg = device(opts.fermi);
            let mut out = format!(
                "{:>15} | {:>9} | {:>12} | {:>13} | {:>10}\n{}\n",
                "engine",
                "matches",
                "host time",
                "device time",
                "sim Gb/s",
                "-".repeat(72)
            );
            for (e, name) in Engine::all() {
                let r = run_engine(e, name, &ac, &text, &cfg, false)?;
                let dev = r
                    .device_seconds
                    .map(|s| format!("{:.3} ms", s * 1e3))
                    .unwrap_or_else(|| "-".into());
                let gbps =
                    r.device_gbps.map(|g| format!("{g:.2}")).unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:>15} | {:>9} | {:>9.1} ms | {:>13} | {:>10}",
                    r.engine,
                    r.count,
                    r.host_seconds * 1e3,
                    dev,
                    gbps
                );
            }
            Ok(out)
        }
    }
}

/// Load a dictionary file: one pattern per line, `\xNN` escapes decoded,
/// blank lines and `#` comments skipped.
pub fn load_patterns(path: &Path) -> Result<PatternSet, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading patterns: {e}"))?;
    let mut pats: Vec<Vec<u8>> = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        pats.push(decode_escapes(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    PatternSet::new(pats).map_err(|e| format!("invalid dictionary: {e}"))
}

/// Decode `\xNN`, `\\`, `\t`, `\n` escapes into raw bytes.
pub fn decode_escapes(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('\\') => out.push(b'\\'),
            Some('t') => out.push(b'\t'),
            Some('n') => out.push(b'\n'),
            Some('x') => {
                let hi = chars.next().ok_or("truncated \\x escape")?;
                let lo = chars.next().ok_or("truncated \\x escape")?;
                let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
                    .map_err(|_| format!("bad hex escape \\x{hi}{lo}"))?;
                out.push(byte);
            }
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("trailing backslash".into()),
        }
    }
    Ok(out)
}

fn stats_text(patterns: &PatternSet, ac: &AcAutomaton) -> String {
    let trie = Trie::build(patterns);
    let s = analysis::analyze_structure(&trie);
    let mut out = String::new();
    let _ = writeln!(out, "patterns:        {}", patterns.len());
    let _ = writeln!(out, "pattern lengths: {}-{} bytes", patterns.min_len(), patterns.max_len());
    let _ = writeln!(out, "states:          {}", s.states);
    let _ = writeln!(out, "mean fanout:     {:.2}", s.mean_fanout);
    let _ = writeln!(out, "dense STT:       {} bytes", ac.stt().size_bytes());
    let _ = writeln!(out, "states by depth: {:?}", s.states_by_depth);
    out
}

fn resilient_text(report: &ResilientReport, ac: &AcAutomaton, opts: &Options) -> String {
    let run = &report.run;
    let mut out = String::new();
    let _ = writeln!(out, "{} matches (resilient, answered by {})", run.matches.len(), run.tier.label());
    if let Some(gpu) = &run.report.gpu {
        let _ = writeln!(
            out,
            "gpu supervision: {} attempt(s), {} retried, {} fault(s) injected",
            gpu.attempts,
            gpu.retries,
            gpu.faults.len()
        );
        for f in &gpu.faults {
            let _ = writeln!(out, "  fired: {f}");
        }
    }
    if let Some(e) = &run.report.gpu_error {
        let _ = writeln!(out, "gpu rung abandoned: {e}");
    }
    if let Some(e) = &run.report.cpu_parallel_error {
        let _ = writeln!(out, "cpu-parallel rung abandoned: {e}");
    }
    if !opts.count_only {
        for m in run.matches.iter().take(opts.limit) {
            let _ = writeln!(
                out,
                "{:>10}..{:<10} {}",
                m.start,
                m.end,
                String::from_utf8_lossy(ac.patterns().get(m.pattern))
            );
        }
        if run.matches.len() > opts.limit {
            let _ = writeln!(out, "... {} more (raise --limit)", run.matches.len() - opts.limit);
        }
    }
    out
}

fn match_text(report: &EngineReport, ac: &AcAutomaton, opts: &Options) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} matches ({} engine)", report.count, report.engine);
    if let (Some(d), Some(g)) = (report.device_seconds, report.device_gbps) {
        let _ = writeln!(out, "simulated device time: {:.3} ms ({g:.2} Gb/s)", d * 1e3);
    }
    if !opts.count_only {
        for m in report.matches.iter().take(opts.limit) {
            let _ = writeln!(
                out,
                "{:>10}..{:<10} {}",
                m.start,
                m.end,
                String::from_utf8_lossy(ac.patterns().get(m.pattern))
            );
        }
        if report.matches.len() > opts.limit {
            let _ = writeln!(out, "... {} more (raise --limit)", report.matches.len() - opts.limit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::parse;

    fn write_tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("acsim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn end_to_end_match_command() {
        let pats = write_tmp("p1.txt", b"he\nshe\nhers\n# comment\n\n");
        let input = write_tmp("i1.txt", b"ushers everywhere");
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "serial",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches"), "{out}"); // she, he, hers in "ushers"; he in "everywhere"
        assert!(out.contains("hers"));
    }

    #[test]
    fn compare_runs_every_engine() {
        let pats = write_tmp("p2.txt", b"the\nand\n");
        let input = write_tmp("i2.txt", b"the cat and the dog and the bird");
        let opts = parse([
            "compare",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        for name in ["serial", "parallel", "gpu:shared", "gpu:global", "gpu:compressed", "gpu:pfac"]
        {
            assert!(out.contains(name), "missing {name} in\n{out}");
        }
    }

    #[test]
    fn stats_and_dot_commands() {
        let pats = write_tmp("p3.txt", b"he\nshe\n");
        let opts = parse(["stats", "--patterns", pats.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("patterns:        2"));
        assert!(out.contains("states by depth"));
        let opts = parse(["dot", "--patterns", pats.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn stats_with_input_profiles_visits() {
        let pats = write_tmp("p4.txt", b"he\n");
        let input = write_tmp("i4.txt", b"hehehe there");
        let opts = parse([
            "stats",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("visit profile"), "{out}");
    }

    #[test]
    fn resilient_match_reports_tier_and_faults() {
        let pats = write_tmp("p6.txt", b"he\nshe\nhers\n");
        let input = write_tmp("i6.txt", b"ushers everywhere");
        // Clean resilient run: GPU answers, same count as the serial engine.
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--resilient",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches (resilient, answered by gpu)"), "{out}");
        // Seeded faults: still 4 matches, and the trace shows what fired.
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--resilient",
            "--fault-seed",
            "3",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches"), "{out}");
        assert!(out.contains("gpu supervision:"), "{out}");
    }

    #[test]
    fn escape_decoding() {
        assert_eq!(decode_escapes("ab").unwrap(), b"ab");
        assert_eq!(decode_escapes(r"a\x00b").unwrap(), vec![b'a', 0, b'b']);
        assert_eq!(decode_escapes(r"\\\t\n").unwrap(), vec![b'\\', b'\t', b'\n']);
        assert!(decode_escapes(r"\q").is_err());
        assert!(decode_escapes(r"\x9").is_err());
        assert!(decode_escapes("trailing\\").is_err());
    }

    #[test]
    fn binary_patterns_via_escapes() {
        let pats = write_tmp("p5.txt", b"\\x90\\x90\\x90\n");
        let input = write_tmp("i5.bin", &[0u8, 0x90, 0x90, 0x90, 1]);
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "gpu:shared",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("1 matches"), "{out}");
    }

    #[test]
    fn missing_files_error_cleanly() {
        let opts = parse([
            "match",
            "--patterns",
            "/nonexistent/p.txt",
            "--input",
            "/nonexistent/i.txt",
        ])
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("reading patterns"));
    }
}
