//! Command execution: load inputs, dispatch, format output.

use crate::engines::{device, run_engine, run_resilient, EngineReport, ResilientReport};
use crate::opts::{Command, Engine, Options};
use ac_core::{analysis, dot, AcAutomaton, NfaTables, PatternSet, Trie};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams, RunOptions};
use bench::{diff_reports, BenchReport, DiffThresholds};
use gpu_sim::{GpuConfig, IntrospectConfig, LaunchStats, StallBreakdown, TraceBuffer, TraceConfig};
use std::fmt::Write as _;
use std::path::Path;

/// Run a parsed invocation, returning the text to print.
pub fn run(opts: &Options) -> Result<String, String> {
    // `bench diff` compares committed reports, `serve-sim` extracts its
    // dictionary from the synthetic corpus, and `slo-report` reads a
    // recorded trace. None of them load --patterns.
    if opts.command == Command::BenchDiff {
        return bench_diff_text(opts);
    }
    if opts.command == Command::ServeSim {
        return serve_sim_text(opts);
    }
    if opts.command == Command::FleetSim {
        return fleet_sim_text(opts);
    }
    if opts.command == Command::SloReport {
        return slo_report_text(opts);
    }
    let patterns = load_patterns(&opts.patterns)?;
    match opts.command {
        Command::Dot => {
            let trie = Trie::build(&patterns);
            let nfa = NfaTables::build(&trie);
            Ok(dot::nfa_to_dot(&trie, &nfa, &patterns))
        }
        Command::Stats => {
            let ac = AcAutomaton::build(&patterns);
            let mut out = stats_text(&patterns, &ac, &device(opts.fermi));
            if let Some(input) = &opts.input {
                let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
                let trie = Trie::build(&patterns);
                let profile = analysis::profile_visits(ac.stt(), &trie, &text);
                let _ = writeln!(out, "\nvisit profile over {} input bytes:", text.len());
                let _ = writeln!(
                    out,
                    "  distinct states visited: {}",
                    profile.distinct_states
                );
                let _ = writeln!(out, "  mean visited depth:      {:.2}", profile.mean_depth);
                for (k, frac) in &profile.concentration {
                    let _ = writeln!(out, "  top-{k:<5} states cover:  {:.1}%", frac * 100.0);
                }
                out.push_str(&launch_stats_text(&ac, &text, &device(opts.fermi)));
            }
            Ok(out)
        }
        Command::Match => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            let cfg = device(opts.fermi);
            let trace_cfg = opts.trace_out.as_ref().map(|_| TraceConfig::default());
            if opts.resilient {
                let report = run_resilient(&ac, &text, &cfg, opts.fault_seed, trace_cfg);
                let mut out = resilient_text(&report, &ac, opts);
                write_exports(
                    opts,
                    report.run.trace.as_ref(),
                    report.run.stats.as_ref(),
                    &cfg,
                    text.len() as u64,
                    &mut out,
                )?;
                return Ok(out);
            }
            // `gpu:auto` sits outside `Engine::all()` (it resolves to a
            // concrete layout), so name it directly.
            let name = if opts.engine == Engine::GpuAuto {
                "gpu:auto"
            } else {
                Engine::all()
                    .iter()
                    .find(|(e, _)| *e == opts.engine)
                    .map(|(_, n)| *n)
                    .expect("engine table is total")
            };
            let report = run_engine(
                opts.engine,
                name,
                &ac,
                &text,
                &cfg,
                opts.count_only,
                trace_cfg,
            )?;
            let mut out = match_text(&report, &ac, opts);
            write_exports(
                opts,
                report.trace.as_ref(),
                report.stats.as_ref(),
                &cfg,
                text.len() as u64,
                &mut out,
            )?;
            Ok(out)
        }
        Command::Profile => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            profile_text(&ac, &text, &device(opts.fermi), opts.json)
        }
        Command::Explain => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            explain_text(opts, &ac, &text, &device(opts.fermi))
        }
        Command::Hot => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            hot_text(opts, &ac, &text, &device(opts.fermi))
        }
        Command::BenchDiff | Command::ServeSim | Command::FleetSim | Command::SloReport => {
            unreachable!("dispatched before pattern loading")
        }
        Command::Compare => {
            let input = opts.input.as_ref().expect("validated by the parser");
            let text = std::fs::read(input).map_err(|e| format!("reading input: {e}"))?;
            let ac = AcAutomaton::build(&patterns);
            let cfg = device(opts.fermi);
            let mut out = format!(
                "{:>15} | {:>9} | {:>12} | {:>13} | {:>10}\n{}\n",
                "engine",
                "matches",
                "host time",
                "device time",
                "sim Gb/s",
                "-".repeat(72)
            );
            for (e, name) in Engine::all() {
                let r = run_engine(e, name, &ac, &text, &cfg, false, None)?;
                let dev = r
                    .device_seconds
                    .map(|s| format!("{:.3} ms", s * 1e3))
                    .unwrap_or_else(|| "-".into());
                let gbps = r
                    .device_gbps
                    .map(|g| format!("{g:.2}"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:>15} | {:>9} | {:>9.1} ms | {:>13} | {:>10}",
                    r.engine,
                    r.count,
                    r.host_seconds * 1e3,
                    dev,
                    gbps
                );
            }
            Ok(out)
        }
    }
}

/// Load a dictionary file: one pattern per line, `\xNN` escapes decoded,
/// blank lines and `#` comments skipped.
pub fn load_patterns(path: &Path) -> Result<PatternSet, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading patterns: {e}"))?;
    let mut pats: Vec<Vec<u8>> = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        pats.push(decode_escapes(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    PatternSet::new(pats).map_err(|e| format!("invalid dictionary: {e}"))
}

/// Decode `\xNN`, `\\`, `\t`, `\n` escapes into raw bytes.
pub fn decode_escapes(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('\\') => out.push(b'\\'),
            Some('t') => out.push(b'\t'),
            Some('n') => out.push(b'\n'),
            Some('x') => {
                let hi = chars.next().ok_or("truncated \\x escape")?;
                let lo = chars.next().ok_or("truncated \\x escape")?;
                let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
                    .map_err(|_| format!("bad hex escape \\x{hi}{lo}"))?;
                out.push(byte);
            }
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("trailing backslash".into()),
        }
    }
    Ok(out)
}

/// Write the requested trace/metrics exports, appending a note per file
/// to `out`. Returns an error only when a write fails; a missing buffer
/// (e.g. the resilient ladder answered from a CPU rung with no device
/// stats) is reported in the output instead.
fn write_exports(
    opts: &Options,
    trace: Option<&TraceBuffer>,
    stats: Option<&LaunchStats>,
    cfg: &GpuConfig,
    input_bytes: u64,
    out: &mut String,
) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        match trace {
            Some(tb) => {
                let json = trace::to_chrome_json(tb, cfg.clock_hz / 1e6);
                std::fs::write(path, json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let _ = writeln!(
                    out,
                    "trace written: {} ({} events, {} dropped)",
                    path.display(),
                    tb.len(),
                    tb.dropped()
                );
            }
            None => {
                let _ = writeln!(out, "trace not written: run produced no trace buffer");
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        match stats {
            Some(stats) => {
                let snap = stats.metrics(cfg.clock_hz, input_bytes);
                let prom = path.extension().and_then(|e| e.to_str()).is_some_and(|e| {
                    e.eq_ignore_ascii_case("prom") || e.eq_ignore_ascii_case("txt")
                });
                let body = if prom {
                    snap.to_prometheus()
                } else {
                    snap.to_json()
                };
                std::fs::write(path, body)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let _ = writeln!(
                    out,
                    "metrics written: {} ({} series, {})",
                    path.display(),
                    snap.len(),
                    if prom { "prometheus" } else { "json" }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "metrics not written: no device stats (answered by a CPU rung)"
                );
            }
        }
    }
    Ok(())
}

/// Simulate the paper's default kernel over `text` and render the launch
/// diagnostics: device time, throughput, and the per-SM load-imbalance
/// spread collected in `LaunchStats::per_sm_cycles`.
fn launch_stats_text(ac: &AcAutomaton, text: &[u8], cfg: &GpuConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nsimulated launch (gpu:shared, {} SMs):", cfg.num_sms);
    let run = GpuAcMatcher::new(*cfg, KernelParams::defaults_for(cfg), ac.clone()).and_then(|m| {
        m.run_opts(
            text,
            Approach::SharedDiagonal,
            RunOptions {
                record: false,
                watchdog_cycles: None,
                trace: None,
                introspect: None,
                attribution: None,
            },
        )
    });
    match run {
        Ok(run) => {
            let stats = &run.stats;
            let imb = stats.load_imbalance();
            let _ = writeln!(
                out,
                "  device time:    {:.3} ms ({:.2} Gb/s over {} bytes)",
                run.seconds() * 1e3,
                run.gbps(),
                text.len()
            );
            let _ = writeln!(
                out,
                "  per-SM cycles:  max {} / min {} / mean {:.0}",
                imb.max, imb.min, imb.mean
            );
            let _ = writeln!(
                out,
                "  load imbalance: {:.3} (max/mean; 1.0 = balanced)",
                imb.ratio()
            );
            if let Some((reason, cycles)) = stats.totals.stalls.dominant() {
                let _ = writeln!(
                    out,
                    "  dominant stall: {} ({} of {} idle cycles)",
                    reason.label(),
                    cycles,
                    stats.totals.idle_cycles
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "  skipped: {e}");
        }
    }
    out
}

/// `acsim bench diff OLD NEW`: compare two committed perf reports under
/// the regression thresholds. A regression (or lost grid coverage) comes
/// back as `Err`, which the binary turns into a non-zero exit — this is
/// the CI gate.
fn bench_diff_text(opts: &Options) -> Result<String, String> {
    let read = |p: &Path| -> Result<BenchReport, String> {
        let raw =
            std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        BenchReport::from_json(&raw).map_err(|e| format!("parsing {}: {e}", p.display()))
    };
    let old = read(opts.bench_old.as_ref().expect("validated by the parser"))?;
    let new = read(opts.bench_new.as_ref().expect("validated by the parser"))?;
    let mut thr = DiffThresholds::default();
    if let Some(pm) = opts.gbps_drop_pm {
        thr.gbps_drop = pm as f64 / 1000.0;
    }
    if let Some(pm) = opts.cycles_rise_pm {
        thr.cycles_rise = pm as f64 / 1000.0;
    }
    if let Some(dpts) = opts.stall_shift_dpts {
        thr.stall_shift_pts = dpts as f64 / 10.0;
    }
    let diff = diff_reports(&old, &new, thr);
    let mut out = diff.render();
    // The layout sweep's headline is a *claim about rows*, not a row: at
    // the largest swept dictionary the best compressed layout must beat
    // the dense STT with a lower texture-miss stall share. Re-derive it
    // from the fresh report whenever the sweep rows are present, so the
    // gate fails on a broken crossover even when every row moved less
    // than the per-row thresholds.
    let mut crossover_broken = false;
    let sweep_point = (
        bench::LAYOUT_SWEEP_SIZE,
        *bench::LAYOUT_SWEEP_PATTERNS.last().expect("non-empty"),
    );
    match bench::check_layout_crossover_report(&new, sweep_point.0, sweep_point.1) {
        Some(Ok((label, gbps, share))) => {
            let _ = writeln!(
                out,
                "layout crossover holds at {} patterns: {label} at {gbps:.2} Gb/s, \
                 {:.0}% tex-miss stall share",
                sweep_point.1,
                share * 100.0
            );
        }
        Some(Err(why)) => {
            crossover_broken = true;
            let _ = writeln!(out, "LAYOUT CROSSOVER BROKEN: {why}");
        }
        None => {}
    }
    // Same idea for the fleet: the device-scaling headline (d4 jobs/s at
    // least 2.5x d1, d1 bit-identical to the single-device serve row) is
    // re-derived from the candidate report whenever its rows are present.
    let mut fleet_broken = false;
    match bench::check_fleet_scaling_report(&new) {
        Some(Ok(ratio)) => {
            let _ = writeln!(out, "fleet scaling holds: d4 at {ratio:.2}x d1 jobs/s");
        }
        Some(Err(why)) => {
            fleet_broken = true;
            let _ = writeln!(out, "FLEET SCALING BROKEN: {why}");
        }
        None => {}
    }
    // And for the steady-state pool: buffer reuse plus pinned staging
    // must keep beating the per-batch churn baseline on jobs/s without
    // giving back p99, whenever the candidate carries the rows.
    let mut steady_broken = false;
    match bench::check_steady_pool_report(&new) {
        Some(Ok(ratio)) => {
            let _ = writeln!(
                out,
                "steady-state pooling pays: pooled at {ratio:.2}x churn jobs/s"
            );
        }
        Some(Err(why)) => {
            steady_broken = true;
            let _ = writeln!(out, "STEADY-STATE POOL BROKEN: {why}");
        }
        None => {}
    }
    if let Some(path) = &opts.report_out {
        std::fs::write(path, diff.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "report written: {}", path.display());
    }
    if diff.has_regressions() || crossover_broken || fleet_broken || steady_broken {
        Err(out)
    } else {
        Ok(out)
    }
}

/// Default dictionary size for `serve-sim`: small enough that the kernel
/// runs near its peak rate, which is the regime where PCIe copies matter
/// and stream overlap pays.
const SERVE_PATTERNS: usize = ac_serve::DEFAULT_PATTERNS;

/// `acsim serve-sim`: replay a deterministic open-loop workload of small
/// scan jobs through the batched multi-stream server and render the
/// [`ac_serve::ServeReport`].
fn serve_sim_text(opts: &Options) -> Result<String, String> {
    use ac_serve::{
        serve, synthetic_workload, ServeConfig, SloConfig, TelemetryConfig, WorkloadConfig,
    };
    let cfg = device(opts.fermi);
    let ac = ac_serve::serve_automaton(SERVE_PATTERNS, opts.serve_seed);
    let matcher =
        GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).map_err(|e| e.to_string())?;
    let workload = WorkloadConfig {
        jobs: opts.serve_jobs,
        arrival_rate_per_sec: opts.serve_rate,
        job_bytes: opts.serve_job_bytes,
        seed: opts.serve_seed,
        deadline_us: opts.serve_deadline_us.map(|us| us as f64),
        // SLO shedding is priority-based: give the workload two classes
        // when a target is set so the controller has something to shed.
        priority_classes: if opts.serve_p99_target_us.is_some() {
            2
        } else {
            1
        },
    };
    let mut serve_cfg = ServeConfig::new(opts.serve_streams);
    serve_cfg.queue_capacity = opts.serve_queue_cap;
    if opts.serve_no_batch {
        serve_cfg = serve_cfg.per_job();
    }
    if let Some(target_us) = opts.serve_p99_target_us {
        serve_cfg.slo = Some(SloConfig {
            p99_target_seconds: target_us as f64 * 1.0e-6,
            ..SloConfig::default()
        });
    }
    serve_cfg.pool = pool_config(opts);
    // Export flags arm end-to-end telemetry; without them the hook stays
    // disarmed and the run is bit-identical to an unobserved one.
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        serve_cfg.telemetry = Some(TelemetryConfig::default());
    }
    if opts.serve_chaos {
        return serve_chaos_text(opts, &matcher);
    }
    let jobs = synthetic_workload(&workload);
    let run = serve(&matcher, jobs, &serve_cfg).map_err(|e| e.to_string())?;
    let r = &run.report;
    let mut out = format!(
        "serve-sim: {} jobs offered at ~{}/s, {} stream(s), {}\n",
        r.jobs_submitted,
        opts.serve_rate,
        r.streams,
        if r.batched {
            "adaptive batching"
        } else {
            "per-job launches"
        }
    );
    let _ = writeln!(
        out,
        "  completed:   {} ({} rejected by backpressure), {} launch(es)",
        r.jobs_completed, r.jobs_rejected, r.batches
    );
    if r.jobs_expired + r.jobs_shed + r.breaker_opens + r.cpu_fallback_batches + r.gpu_retries > 0 {
        let _ = writeln!(
            out,
            "  resilience:  {} expired, {} shed, {} breaker open(s), \
             {} cpu-fallback batch(es), {} gpu retry(ies)",
            r.jobs_expired, r.jobs_shed, r.breaker_opens, r.cpu_fallback_batches, r.gpu_retries
        );
    }
    let _ = writeln!(
        out,
        "  makespan:    {:.3} ms simulated   jobs/sec: {:.0}",
        r.makespan_seconds * 1e3,
        r.jobs_per_sec
    );
    let _ = writeln!(
        out,
        "  latency:     p50 {:.0} µs   p99 {:.0} µs   mean {:.0} µs",
        r.p50_latency_us, r.p99_latency_us, r.mean_latency_us
    );
    let _ = writeln!(
        out,
        "  effective:   {:.2} Gb/s over {} payload bytes",
        r.effective_gbps, r.payload_bytes
    );
    let _ = writeln!(
        out,
        "  engines:     copy {:.0}% busy, compute {:.0}% busy",
        r.copy_utilisation * 100.0,
        r.compute_utilisation * 100.0
    );
    let hist: Vec<String> = r
        .batch_histogram
        .iter()
        .map(|b| format!("{}×{}", b.count, b.jobs))
        .collect();
    let _ = writeln!(out, "  batch sizes: {} (count×jobs)", hist.join(" "));
    write_pool_summary(opts, r, &mut out)?;
    if let Some(path) = &opts.report_out {
        std::fs::write(path, r.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "report written: {}", path.display());
    }
    write_serve_exports(opts, run.telemetry.as_ref(), &run.report, &mut out)?;
    Ok(out)
}

/// `acsim fleet-sim`: replay the serving workload through a multi-device
/// fleet behind the sharded, cost-routed dispatcher and render the
/// [`ac_serve::FleetReport`].
fn fleet_sim_text(opts: &Options) -> Result<String, String> {
    use ac_serve::{
        synthetic_workload, FleetConfig, ServeConfig, SloConfig, TelemetryConfig, WorkloadConfig,
    };
    let cfg = device(opts.fermi);
    let ac = ac_serve::serve_automaton(SERVE_PATTERNS, opts.serve_seed);
    let matcher =
        GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).map_err(|e| e.to_string())?;
    let workload = WorkloadConfig {
        jobs: opts.serve_jobs,
        arrival_rate_per_sec: opts.serve_rate,
        job_bytes: opts.serve_job_bytes,
        seed: opts.serve_seed,
        deadline_us: opts.serve_deadline_us.map(|us| us as f64),
        priority_classes: if opts.serve_p99_target_us.is_some() {
            2
        } else {
            1
        },
    };
    let mut dev_cfg = ServeConfig::new(opts.serve_streams);
    dev_cfg.queue_capacity = opts.serve_queue_cap;
    if opts.serve_no_batch {
        dev_cfg = dev_cfg.per_job();
    }
    if let Some(target_us) = opts.serve_p99_target_us {
        dev_cfg.slo = Some(SloConfig {
            p99_target_seconds: target_us as f64 * 1.0e-6,
            ..SloConfig::default()
        });
    }
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        dev_cfg.telemetry = Some(TelemetryConfig::default());
    }
    dev_cfg.pool = pool_config(opts);
    let mut fleet_cfg = FleetConfig::new(opts.fleet_devices, dev_cfg);
    if opts.fleet_no_routing {
        fleet_cfg = fleet_cfg.parity();
    }
    fleet_cfg.shard_bytes = opts.fleet_shard_bytes;
    let jobs = synthetic_workload(&workload);
    let run = ac_serve::serve_fleet(&matcher, jobs, &fleet_cfg).map_err(|e| e.to_string())?;
    let f = &run.report;
    let r = &f.serve;
    let mut out = format!(
        "fleet-sim: {} device(s) × {} stream(s), {} jobs offered at ~{}/s, {}\n",
        f.devices,
        opts.serve_streams,
        r.jobs_submitted,
        opts.serve_rate,
        if opts.fleet_no_routing {
            "parity dispatch (least-loaded stream)"
        } else {
            "calibrated cost routing"
        }
    );
    let _ = writeln!(
        out,
        "  completed:   {} ({} rejected by backpressure), {} launch(es)",
        r.jobs_completed, r.jobs_rejected, r.batches
    );
    if r.jobs_expired + r.jobs_shed + r.breaker_opens + r.cpu_fallback_batches + r.gpu_retries > 0 {
        let _ = writeln!(
            out,
            "  resilience:  {} expired, {} shed, {} breaker open(s), \
             {} cpu-fallback batch(es), {} gpu retry(ies)",
            r.jobs_expired, r.jobs_shed, r.breaker_opens, r.cpu_fallback_batches, r.gpu_retries
        );
    }
    let _ = writeln!(
        out,
        "  makespan:    {:.3} ms simulated   jobs/sec: {:.0}",
        r.makespan_seconds * 1e3,
        r.jobs_per_sec
    );
    let _ = writeln!(
        out,
        "  latency:     p50 {:.0} µs   p99 {:.0} µs   mean {:.0} µs",
        r.p50_latency_us, r.p99_latency_us, r.mean_latency_us
    );
    let _ = writeln!(
        out,
        "  effective:   {:.2} Gb/s over {} payload bytes",
        r.effective_gbps, r.payload_bytes
    );
    let _ = writeln!(
        out,
        "  shared bus:  {:.0}% busy, {} grant(s), {} contended, {:.0} µs waited",
        f.bus_utilisation * 100.0,
        f.bus.grants,
        f.bus.contended,
        f.bus.waited_seconds * 1e6
    );
    if f.scattered_jobs > 0 {
        let _ = writeln!(
            out,
            "  scattered:   {} oversized job(s) sharded across all devices",
            f.scattered_jobs
        );
    }
    let _ = writeln!(out, "  per device:  (batches / jobs / copy% / compute%)");
    for d in &f.per_device {
        let _ = writeln!(
            out,
            "    gpu{}: {:>4} / {:>5} / {:>3.0}% / {:>3.0}%{}",
            d.device,
            d.batches,
            d.jobs,
            d.copy_utilisation * 100.0,
            d.compute_utilisation * 100.0,
            if d.breaker_opens > 0 {
                format!("   ({} breaker open(s))", d.breaker_opens)
            } else {
                String::new()
            }
        );
    }
    if !f.routing.is_empty() {
        let _ = writeln!(out, "  routing:     (jobs / bytes / shed / expired)");
        for t in &f.routing {
            let _ = writeln!(
                out,
                "    {:<5} {:>5} / {:>8} / {:>4} / {:>4}",
                t.tier, t.jobs, t.bytes, t.shed, t.expired
            );
        }
    }
    if !f.cost_models.is_empty() {
        let _ = writeln!(out, "  cost models: (setup µs + bytes at GB/s)");
        for c in &f.cost_models {
            let _ = writeln!(
                out,
                "    {:<5} {:>7.1} µs + {:>6.2} GB/s",
                c.tier,
                c.setup_seconds * 1e6,
                c.bytes_per_sec / 1e9
            );
        }
    }
    write_pool_summary(opts, r, &mut out)?;
    if let Some(path) = &opts.report_out {
        std::fs::write(path, f.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "report written: {}", path.display());
    }
    write_serve_exports(opts, run.serve.telemetry.as_ref(), r, &mut out)?;
    Ok(out)
}

/// The device-pool configuration selected by `--pool`/`--pool-churn`
/// (`None` when neither flag is given: the legacy untracked-scratch
/// path, bit-identical to a pre-pool run).
fn pool_config(opts: &Options) -> Option<ac_serve::ServePoolConfig> {
    if opts.serve_pool {
        Some(ac_serve::ServePoolConfig::pooled(
            ac_serve::DEFAULT_POOL_CAPACITY,
        ))
    } else if opts.serve_pool_churn {
        Some(ac_serve::ServePoolConfig::churn(
            ac_serve::DEFAULT_POOL_CAPACITY,
        ))
    } else {
        None
    }
}

/// Render the device-pool summary line and write the `--pool-stats`
/// JSON artifact when a pool ran.
fn write_pool_summary(
    opts: &Options,
    report: &ac_serve::ServeReport,
    out: &mut String,
) -> Result<(), String> {
    let Some(pool) = &report.pool else {
        return Ok(());
    };
    let _ = writeln!(
        out,
        "  device pool: {} acquires ({} hits, {} misses, {:.0}% hit rate), \
         high water {} bytes{}",
        pool.acquires,
        pool.hits,
        pool.misses,
        pool.hit_rate * 100.0,
        pool.high_water_bytes,
        if opts.serve_pool_churn {
            " [churn baseline: pageable host, no reuse]"
        } else {
            " [pinned host staging]"
        }
    );
    if let Some(path) = &opts.pool_stats_out {
        let json = serde_json::to_string_pretty(pool)
            .map_err(|e| format!("serializing pool stats: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "pool stats written: {}", path.display());
    }
    Ok(())
}

/// Write the `serve-sim` telemetry exports: the stitched Chrome trace
/// (schema-validated before it touches disk, so a malformed export fails
/// the command rather than silently producing a broken artifact) and the
/// metrics snapshot (Prometheus text for `.prom`/`.txt` paths, else
/// JSON).
fn write_serve_exports(
    opts: &Options,
    telemetry: Option<&ac_serve::TelemetryRun>,
    report: &ac_serve::ServeReport,
    out: &mut String,
) -> Result<(), String> {
    if opts.trace_out.is_none() && opts.metrics_out.is_none() {
        return Ok(());
    }
    let tel = telemetry.ok_or("telemetry was armed but the run recorded none")?;
    if let Some(path) = &opts.trace_out {
        let json = tel.chrome_json();
        let summary = trace::validate_chrome_json(&json)
            .map_err(|e| format!("telemetry trace failed schema validation: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(
            out,
            "trace written: {} ({} events, {} spans, {} dropped)",
            path.display(),
            summary.events,
            summary.spans,
            tel.trace.dropped()
        );
    }
    if let Some(path) = &opts.metrics_out {
        let snap = tel.metrics_snapshot(report);
        let prom = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.eq_ignore_ascii_case("prom") || e.eq_ignore_ascii_case("txt"));
        let body = if prom {
            snap.to_prometheus()
        } else {
            snap.to_json()
        };
        std::fs::write(path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(
            out,
            "metrics written: {} ({} series, {})",
            path.display(),
            snap.len(),
            if prom { "prometheus" } else { "json" }
        );
    }
    Ok(())
}

/// `acsim slo-report TRACE.json`: validate a recorded serve telemetry
/// trace and render the incident narrative (breaker timeline, pressure
/// counters, admission decisions, worst-latency exemplars).
fn slo_report_text(opts: &Options) -> Result<String, String> {
    let path = opts.slo_trace.as_ref().expect("validated by the parser");
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    trace::validate_chrome_json(&json)
        .map_err(|e| format!("{} is not a valid chrome trace: {e}", path.display()))?;
    // The trace was exported in microseconds, so parse it back 1:1.
    let events = trace::parse_chrome_json(&json, 1.0)
        .map_err(|e| format!("parsing {}: {e}", path.display()))?;
    Ok(ac_serve::render_slo_report(&events))
}

/// `acsim serve-sim --chaos`: the seeded fault-storm soak. The load and
/// resilience policy are the pinned smoke scenario ([`ChaosConfig::smoke`]
/// — one replayable storm, the same one CI gates on); the generic
/// load-shaping flags do not apply. `--fault-seed` places the storm,
/// `--seed` reshuffles payloads, `--deadline-us`/`--p99-target-us`
/// override the resilience knobs. Renders the verdict, writes it as the
/// `--report` artifact, and returns `Err` (→ exit code 1) when any
/// resilience invariant is violated, so CI can gate on it directly.
fn serve_chaos_text(opts: &Options, matcher: &GpuAcMatcher) -> Result<String, String> {
    use ac_serve::{chaos_soak_runs, ChaosConfig, SloConfig, TelemetryConfig};
    let seed = opts.fault_seed.unwrap_or(bench::CHAOS_SEED);
    let mut chaos = ChaosConfig::smoke(seed);
    chaos.workload.seed = opts.serve_seed;
    if let Some(us) = opts.serve_deadline_us {
        chaos.workload.deadline_us = Some(us as f64);
    }
    if let Some(target_us) = opts.serve_p99_target_us {
        chaos.workload.priority_classes = 2;
        chaos.serve.slo = Some(SloConfig {
            p99_target_seconds: target_us as f64 * 1.0e-6,
            ..SloConfig::default()
        });
    }
    // Export flags arm telemetry on the soak; the *faulted* run is the
    // interesting one (breaker transitions, fallbacks), so that is the
    // trace/metrics artifact.
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        chaos.serve.telemetry = Some(TelemetryConfig::default());
    }
    let (verdict, _baseline, faulted) =
        chaos_soak_runs(matcher, &chaos).map_err(|e| e.to_string())?;
    let mut out = format!(
        "serve-chaos: seed {seed}, {} jobs, {} stream(s)\n",
        verdict.faulted.jobs_submitted, verdict.faulted.streams
    );
    let _ = writeln!(
        out,
        "  storm:       {} fault(s) fired, {} gpu retry(ies), {} breaker open(s), \
         {} cpu-fallback batch(es)",
        verdict.faulted.faults_fired,
        verdict.faulted.gpu_retries,
        verdict.faulted.breaker_opens,
        verdict.faulted.cpu_fallback_batches
    );
    let _ = writeln!(
        out,
        "  accounting:  {} completed, {} expired, {} rejected, {} shed \
         (of {} offered; {} wrong, {} lost)",
        verdict.faulted.jobs_completed,
        verdict.faulted.jobs_expired,
        verdict.faulted.jobs_rejected,
        verdict.faulted.jobs_shed,
        verdict.faulted.jobs_submitted,
        verdict.wrong_matches,
        verdict.lost_jobs
    );
    let _ = writeln!(
        out,
        "  degradation: p99 {:.1}x baseline inside [{:.0} µs, {:.0} µs], \
         {:.2}x after recovery",
        verdict.degraded_p99_ratio,
        verdict.degraded_from_seconds * 1e6,
        verdict.degraded_until_seconds * 1e6,
        verdict.recovered_p99_ratio
    );
    let _ = writeln!(
        out,
        "  p99:         baseline {:.0} µs   under storm {:.0} µs",
        verdict.baseline.p99_latency_us, verdict.faulted.p99_latency_us
    );
    if let Some(path) = &opts.report_out {
        std::fs::write(path, verdict.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "verdict written: {}", path.display());
    }
    // Export before the verdict gate so the incident artifacts exist
    // precisely when the soak fails and someone needs to debug it.
    write_serve_exports(opts, faulted.telemetry.as_ref(), &faulted.report, &mut out)?;
    if verdict.passed() {
        let _ = writeln!(out, "  verdict:     PASS (all resilience invariants held)");
        Ok(out)
    } else {
        let _ = writeln!(out, "  verdict:     FAIL");
        for v in &verdict.violations {
            let _ = writeln!(out, "    violation: {v}");
        }
        print!("{out}");
        Err("chaos soak violated resilience invariants".into())
    }
}

/// `acsim explain`: the counterfactual knob sweep plus the spatial
/// memory-hierarchy view of the baseline — per-state texture fetches,
/// end-of-run texture-cache residency, and the shared-memory conflict
/// degree histogram.
fn explain_text(
    opts: &Options,
    ac: &AcAutomaton,
    text: &[u8],
    cfg: &GpuConfig,
) -> Result<String, String> {
    let params = KernelParams::defaults_for(cfg);
    let matcher = GpuAcMatcher::new(*cfg, params, ac.clone())?;
    let approach = match opts.engine {
        Engine::GpuShared => Approach::SharedDiagonal,
        Engine::GpuGlobal => Approach::GlobalOnly,
        Engine::GpuCompressed => Approach::SharedCompressed,
        Engine::GpuBanded => Approach::SharedBanded,
        Engine::GpuTwoLevel => Approach::SharedTwoLevel,
        Engine::GpuPfac => Approach::Pfac,
        Engine::GpuAuto => {
            let choice = ac_gpu::pick_layout(&matcher, text).map_err(|e| e.to_string())?;
            choice
                .layout
                .approach()
                .expect("picker returns concrete layouts")
        }
        Engine::Serial | Engine::Parallel => unreachable!("validated by the parser"),
    };
    let report = bench::explain(cfg, params, ac, text, approach)?;
    let mut out = report.render();

    let run = matcher.run_opts(
        text,
        approach,
        RunOptions {
            record: false,
            watchdog_cycles: None,
            trace: None,
            introspect: Some(IntrospectConfig::default()),
            attribution: None,
        },
    )?;
    let intro = run
        .introspection
        .expect("introspection was armed for this run");
    let fetches = intro.row_fetches(0);
    out.push('\n');
    out.push_str(&trace::render_heatmap(
        "per-state texture fetches (STT row = DFA state):",
        &fetches,
        64,
    ));
    // The compressed-layout kernels' first texture holds per-state
    // metadata (bitmap, band, or hot rows), not the dense STT, so the
    // line→row residency mapping only holds for dense-table kernels.
    if ac_gpu::SttLayout::of_approach(approach)
        .map(|l| l == ac_gpu::SttLayout::Dense)
        .unwrap_or(true)
    {
        let resident = intro.resident_rows(&matcher.stt_texture());
        out.push('\n');
        out.push_str(&trace::render_heatmap(
            "texture-L1 residency by STT row (end of run):",
            &resident,
            64,
        ));
    }
    let hist = intro.bank_histogram();
    let bins: Vec<(String, u64)> = hist
        .degree_counts
        .iter()
        .enumerate()
        .skip(1)
        .map(|(degree, &ops)| (format!("{degree}-way"), ops))
        .collect();
    out.push('\n');
    out.push_str(&trace::render_histogram(
        "shared-memory ops by conflict degree (1-way = conflict-free):",
        &bins,
        40,
    ));
    if let Some(path) = &opts.csv_out {
        let rows: Vec<(String, u64)> = fetches
            .iter()
            .enumerate()
            .map(|(state, &count)| (state.to_string(), count))
            .collect();
        std::fs::write(path, trace::to_csv(("state", "fetches"), &rows))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "csv written: {}", path.display());
    }
    Ok(out)
}

/// One row of `profile --json`.
#[derive(serde::Serialize)]
struct ProfileRow {
    config: String,
    cycles: u64,
    seconds: f64,
    gbps: f64,
    busy_pct: f64,
    idle_cycles: u64,
    stalls: StallBreakdown,
}

/// The `profile` sweep: run every GPU kernel configuration over `text`
/// and tabulate cycles, throughput, SM occupancy, and the stall-reason
/// breakdown, closing with the Fig. 19 narrative for the paper's default
/// kernel. With `json` the same rows come back machine-readable.
fn profile_text(
    ac: &AcAutomaton,
    text: &[u8],
    cfg: &GpuConfig,
    json: bool,
) -> Result<String, String> {
    let matcher = GpuAcMatcher::new(*cfg, KernelParams::defaults_for(cfg), ac.clone())
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "profiling {} input bytes on {} SMs @ {:.3} GHz\n\n",
        text.len(),
        cfg.num_sms,
        cfg.clock_hz / 1e9
    );
    let _ = writeln!(
        out,
        "{:>15} | {:>12} | {:>10} | {:>8} | {:>6} | stall breakdown (% of idle)",
        "config", "cycles", "device ms", "Gb/s", "busy%"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    let mut shared_stats: Option<LaunchStats> = None;
    let mut json_rows: Vec<ProfileRow> = Vec::new();
    for (engine, name) in Engine::all() {
        let approach = match engine {
            Engine::GpuGlobal => Approach::GlobalOnly,
            Engine::GpuShared => Approach::SharedDiagonal,
            Engine::GpuCompressed => Approach::SharedCompressed,
            Engine::GpuBanded => Approach::SharedBanded,
            Engine::GpuTwoLevel => Approach::SharedTwoLevel,
            Engine::GpuPfac => Approach::Pfac,
            Engine::Serial | Engine::Parallel | Engine::GpuAuto => continue,
        };
        let run = matcher
            .run_opts(
                text,
                approach,
                RunOptions {
                    record: false,
                    watchdog_cycles: None,
                    trace: None,
                    introspect: None,
                    attribution: None,
                },
            )
            .map_err(|e| format!("{name}: {e}"))?;
        let stats = &run.stats;
        let sm_cycles: u64 = stats.per_sm.iter().map(|s| s.cycles).sum();
        let idle = stats.totals.idle_cycles;
        let busy = if sm_cycles == 0 {
            100.0
        } else {
            100.0 * (1.0 - idle as f64 / sm_cycles as f64)
        };
        let mut breakdown: Vec<String> = stats
            .totals
            .stalls
            .entries()
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(r, c)| {
                format!(
                    "{} {:.0}%",
                    r.label(),
                    100.0 * c as f64 / idle.max(1) as f64
                )
            })
            .collect();
        if breakdown.is_empty() {
            breakdown.push("none".into());
        }
        if json {
            json_rows.push(ProfileRow {
                config: name.to_string(),
                cycles: stats.cycles,
                seconds: run.seconds(),
                gbps: run.gbps(),
                busy_pct: busy,
                idle_cycles: idle,
                stalls: stats.totals.stalls,
            });
        }
        let _ = writeln!(
            out,
            "{:>15} | {:>12} | {:>10.3} | {:>8.2} | {:>6.1} | {}",
            name,
            stats.cycles,
            run.seconds() * 1e3,
            run.gbps(),
            busy,
            breakdown.join(", ")
        );
        if approach == Approach::SharedDiagonal {
            shared_stats = Some(run.stats);
        }
    }
    if json {
        return serde_json::to_string_pretty(&json_rows).map_err(|e| e.to_string());
    }
    if let Some(stats) = shared_stats {
        let _ = writeln!(out, "\ngpu:shared latency-hiding detail (paper Fig. 19):");
        out.push_str(&stats.stall_summary());
    }
    Ok(out)
}

/// One state row of `hot --json` output.
#[derive(serde::Serialize)]
struct HotStateRow {
    state: u32,
    prefix: String,
    cycles: u64,
    share_pct: f64,
    tex_fetches: u64,
    tex_miss_pct: f64,
    fail_pct: f64,
    patterns: Vec<u32>,
}

/// One pattern row of `hot --json` output.
#[derive(serde::Serialize)]
struct HotPatternRow {
    pattern: u32,
    text: String,
    cycles: f64,
    share_pct: f64,
}

/// The full `hot --json` document.
#[derive(serde::Serialize)]
struct HotReport {
    approach: String,
    input_bytes: usize,
    states: usize,
    total_sm_cycles: u64,
    attributed_cycles: u64,
    unattributed_cycles: u64,
    drain_cycles: u64,
    hot_states: Vec<HotStateRow>,
    hot_patterns: Vec<HotPatternRow>,
}

/// A state's trie prefix, printable-escaped ("" for the root).
fn state_prefix(own: &ac_core::StateOwnership, state: u32) -> String {
    own.path_bytes(state).escape_ascii().to_string()
}

fn hot_text(
    opts: &Options,
    ac: &AcAutomaton,
    text: &[u8],
    cfg: &GpuConfig,
) -> Result<String, String> {
    let params = KernelParams::defaults_for(cfg);
    let matcher = GpuAcMatcher::new(*cfg, params, ac.clone())?;
    let approach = match opts.engine {
        Engine::GpuShared => Approach::SharedDiagonal,
        Engine::GpuGlobal => Approach::GlobalOnly,
        Engine::GpuCompressed => Approach::SharedCompressed,
        Engine::GpuBanded => Approach::SharedBanded,
        Engine::GpuTwoLevel => Approach::SharedTwoLevel,
        Engine::GpuPfac => Approach::Pfac,
        Engine::GpuAuto => {
            let choice = ac_gpu::pick_layout(&matcher, text).map_err(|e| e.to_string())?;
            choice
                .layout
                .approach()
                .expect("picker returns concrete layouts")
        }
        Engine::Serial | Engine::Parallel => unreachable!("validated by the parser"),
    };
    let run = matcher.run_opts(
        text,
        approach,
        RunOptions {
            record: false,
            attribution: Some(gpu_sim::AttributionConfig::default()),
            ..Default::default()
        },
    )?;
    let w = run.attribution.expect("attribution requested");
    let own = ac_core::StateOwnership::build(ac.patterns());
    let total = w.total_sm_cycles.max(1) as f64;

    if let Some(path) = &opts.folded_out {
        // One folded stack per charged state: its trie root path as the
        // frames (one frame per prefix byte), its charged cycles as the
        // self value. Flamegraph tooling then aggregates shared prefixes.
        let stacks: Vec<trace::FoldedStack> = w
            .state_cycles
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| {
                let mut frames = vec!["root".to_string()];
                frames.extend(
                    own.path_states(s as u32)
                        .into_iter()
                        .skip(1)
                        .map(|st| [own.edge_byte(st)].escape_ascii().to_string()),
                );
                trace::FoldedStack { frames, value: c }
            })
            .collect();
        std::fs::write(path, trace::render_folded(&stacks))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    let hot_states: Vec<HotStateRow> = w
        .hot_states()
        .into_iter()
        .take(opts.top)
        .map(|(s, cycles)| {
            let f = w.tex_fetches[s as usize];
            HotStateRow {
                state: s,
                prefix: state_prefix(&own, s),
                cycles,
                share_pct: cycles as f64 / total * 100.0,
                tex_fetches: f,
                tex_miss_pct: if f > 0 {
                    w.tex_misses[s as usize] as f64 / f as f64 * 100.0
                } else {
                    0.0
                },
                fail_pct: if cycles > 0 {
                    w.fail_cycles[s as usize] as f64 / cycles as f64 * 100.0
                } else {
                    0.0
                },
                patterns: own.owners_of(s).to_vec(),
            }
        })
        .collect();

    let per_pattern = own.per_pattern_cost(&w.state_cycles);
    let mut ranked: Vec<(u32, f64)> = per_pattern
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0.0)
        .map(|(p, &c)| (p as u32, c))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let hot_patterns: Vec<HotPatternRow> = ranked
        .into_iter()
        .take(opts.top)
        .map(|(p, cycles)| HotPatternRow {
            pattern: p,
            text: ac.patterns().get(p).escape_ascii().to_string(),
            cycles,
            share_pct: cycles / total * 100.0,
        })
        .collect();

    if opts.json {
        let report = HotReport {
            approach: approach.label().to_string(),
            input_bytes: text.len(),
            states: ac.state_count(),
            total_sm_cycles: w.total_sm_cycles,
            attributed_cycles: w.attributed_cycles(),
            unattributed_cycles: w.unattributed_cycles,
            drain_cycles: w.drain_cycles,
            hot_states,
            hot_patterns,
        };
        return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
    }

    let mut out = format!(
        "workload attribution: {} over {} input bytes, {} DFA states\n",
        approach.label(),
        text.len(),
        ac.state_count()
    );
    let _ = writeln!(
        out,
        "total SM cycles: {} (attributed {} = {:.1}%, unattributed {}, drain {})\n",
        w.total_sm_cycles,
        w.attributed_cycles(),
        w.attributed_cycles() as f64 / total * 100.0,
        w.unattributed_cycles,
        w.drain_cycles
    );
    let _ = writeln!(out, "top {} hot states (by charged cycles):", opts.top);
    let _ = writeln!(
        out,
        "{:>7} | {:>12} | {:>6} | {:>9} | {:>8} | {:>6} | prefix",
        "state", "cycles", "share", "tex-fetch", "tex-miss", "fail"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for r in &hot_states {
        let _ = writeln!(
            out,
            "{:>7} | {:>12} | {:>5.1}% | {:>9} | {:>7.1}% | {:>5.1}% | \"{}\"",
            r.state, r.cycles, r.share_pct, r.tex_fetches, r.tex_miss_pct, r.fail_pct, r.prefix
        );
    }
    let _ = writeln!(
        out,
        "\ntop {} hot patterns (shared-prefix cost split evenly):",
        opts.top
    );
    let _ = writeln!(
        out,
        "{:>7} | {:>12} | {:>6} | pattern",
        "id", "cycles", "share"
    );
    let _ = writeln!(out, "{}", "-".repeat(48));
    for r in &hot_patterns {
        let _ = writeln!(
            out,
            "{:>7} | {:>12.0} | {:>5.1}% | \"{}\"",
            r.pattern, r.cycles, r.share_pct, r.text
        );
    }
    if let Some(path) = &opts.folded_out {
        let _ = writeln!(out, "\nfolded stacks written to {}", path.display());
    }
    Ok(out)
}

fn stats_text(patterns: &PatternSet, ac: &AcAutomaton, cfg: &GpuConfig) -> String {
    let trie = Trie::build(patterns);
    let s = analysis::analyze_structure(&trie);
    let mut out = String::new();
    let _ = writeln!(out, "patterns:        {}", patterns.len());
    let _ = writeln!(
        out,
        "pattern lengths: {}-{} bytes",
        patterns.min_len(),
        patterns.max_len()
    );
    let _ = writeln!(out, "states:          {}", s.states);
    let _ = writeln!(out, "mean fanout:     {:.2}", s.mean_fanout);
    let _ = writeln!(out, "dense STT:       {} bytes", ac.stt().size_bytes());
    let _ = writeln!(out, "states by depth: {:?}", s.states_by_depth);
    let _ = writeln!(
        out,
        "\nSTT device footprint by layout (texture L1 {} KiB, L2 {} KiB per SM):",
        cfg.tex_cache.size_bytes / 1024,
        cfg.tex_l2.size_bytes / 1024
    );
    let _ = writeln!(
        out,
        "  {:>9} | {:>12} | {:>9} | {:>9}",
        "layout", "bytes", "of L1", "of L2"
    );
    for fp in ac_gpu::layout_footprints(ac, cfg) {
        let _ = writeln!(
            out,
            "  {:>9} | {:>12} | {:>8.1}% | {:>8.1}%",
            fp.layout.label(),
            fp.bytes,
            fp.share_of(cfg.tex_cache.size_bytes) * 100.0,
            fp.share_of(cfg.tex_l2.size_bytes) * 100.0
        );
    }
    out
}

fn resilient_text(report: &ResilientReport, ac: &AcAutomaton, opts: &Options) -> String {
    let run = &report.run;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} matches (resilient, answered by {})",
        run.matches.len(),
        run.tier.label()
    );
    if let Some(gpu) = &run.report.gpu {
        let _ = writeln!(
            out,
            "gpu supervision: {} attempt(s), {} retried, {} fault(s) injected",
            gpu.attempts,
            gpu.retries,
            gpu.faults.len()
        );
        for f in &gpu.faults {
            let _ = writeln!(out, "  fired: {f}");
        }
    }
    if let Some(e) = &run.report.gpu_error {
        let _ = writeln!(out, "gpu rung abandoned: {e}");
    }
    if let Some(e) = &run.report.cpu_parallel_error {
        let _ = writeln!(out, "cpu-parallel rung abandoned: {e}");
    }
    if !opts.count_only {
        for m in run.matches.iter().take(opts.limit) {
            let _ = writeln!(
                out,
                "{:>10}..{:<10} {}",
                m.start,
                m.end,
                String::from_utf8_lossy(ac.patterns().get(m.pattern))
            );
        }
        if run.matches.len() > opts.limit {
            let _ = writeln!(
                out,
                "... {} more (raise --limit)",
                run.matches.len() - opts.limit
            );
        }
    }
    out
}

fn match_text(report: &EngineReport, ac: &AcAutomaton, opts: &Options) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} matches ({} engine)", report.count, report.engine);
    if let (Some(d), Some(g)) = (report.device_seconds, report.device_gbps) {
        let _ = writeln!(
            out,
            "simulated device time: {:.3} ms ({g:.2} Gb/s)",
            d * 1e3
        );
    }
    if !opts.count_only {
        for m in report.matches.iter().take(opts.limit) {
            let _ = writeln!(
                out,
                "{:>10}..{:<10} {}",
                m.start,
                m.end,
                String::from_utf8_lossy(ac.patterns().get(m.pattern))
            );
        }
        if report.matches.len() > opts.limit {
            let _ = writeln!(
                out,
                "... {} more (raise --limit)",
                report.matches.len() - opts.limit
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::parse;

    fn write_tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("acsim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn end_to_end_match_command() {
        let pats = write_tmp("p1.txt", b"he\nshe\nhers\n# comment\n\n");
        let input = write_tmp("i1.txt", b"ushers everywhere");
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "serial",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches"), "{out}"); // she, he, hers in "ushers"; he in "everywhere"
        assert!(out.contains("hers"));
    }

    #[test]
    fn hot_prints_table_and_writes_parseable_folded_stacks() {
        let pats = write_tmp("hot-p.txt", b"he\nshe\nhis\nhers\n");
        let input = write_tmp(
            "hot-i.txt",
            b"those users share his shelf; she ushers her heirs there".as_slice(),
        );
        let folded = std::env::temp_dir().join("acsim-tests").join("hot.folded");
        let opts = parse([
            "hot",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--top",
            "5",
            "--folded-out",
            folded.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(
            out.contains("workload attribution: shared-diagonal"),
            "{out}"
        );
        assert!(out.contains("top 5 hot states"), "{out}");
        assert!(out.contains("top 5 hot patterns"), "{out}");
        // The root state is always the hottest row of a short scan.
        assert!(out.contains("| \"\""), "missing root prefix row:\n{out}");
        // The folded artifact round-trips through the parser and carries
        // the root stack.
        let text = std::fs::read_to_string(&folded).unwrap();
        let stacks = trace::parse_folded(&text).expect("valid folded output");
        assert!(!stacks.is_empty());
        assert!(stacks.iter().all(|s| s.frames[0] == "root"));
        assert!(stacks.iter().any(|s| s.frames.len() > 1 && s.value > 0));
    }

    #[test]
    fn hot_json_is_machine_readable_and_conserves() {
        let pats = write_tmp("hot-jp.txt", b"he\nshe\nhis\nhers\n");
        let input = write_tmp(
            "hot-ji.txt",
            b"she ushers her heirs; he hears her".as_slice(),
        );
        let opts = parse([
            "hot",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "gpu:banded",
            "--json",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        let v: serde::Value = serde_json::from_str(&out).expect("valid JSON");
        let obj = v.as_obj().expect("top-level object");
        let field = |k: &str| serde::obj_get(obj, k).unwrap_or_else(|| panic!("missing {k}"));
        let num = |k: &str| match field(k) {
            serde::Value::U64(n) => *n,
            serde::Value::I64(n) if *n >= 0 => *n as u64,
            other => panic!("{k} not a u64: {other:?}"),
        };
        assert_eq!(field("approach").as_str(), Some("shared-banded"));
        assert_eq!(
            num("attributed_cycles") + num("unattributed_cycles") + num("drain_cycles"),
            num("total_sm_cycles")
        );
        assert!(!field("hot_states").as_arr().unwrap().is_empty());
        assert!(!field("hot_patterns").as_arr().unwrap().is_empty());
    }

    #[test]
    fn compare_runs_every_engine() {
        let pats = write_tmp("p2.txt", b"the\nand\n");
        let input = write_tmp("i2.txt", b"the cat and the dog and the bird");
        let opts = parse([
            "compare",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        for name in [
            "serial",
            "parallel",
            "gpu:shared",
            "gpu:global",
            "gpu:compressed",
            "gpu:banded",
            "gpu:twolevel",
            "gpu:pfac",
        ] {
            assert!(out.contains(name), "missing {name} in\n{out}");
        }
    }

    #[test]
    fn stats_and_dot_commands() {
        let pats = write_tmp("p3.txt", b"he\nshe\n");
        let opts = parse(["stats", "--patterns", pats.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("patterns:        2"));
        assert!(out.contains("states by depth"));
        let opts = parse(["dot", "--patterns", pats.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn stats_prints_layout_footprint_table() {
        let pats = write_tmp("p15.txt", b"he\nshe\nhers\nhis\n");
        let opts = parse(["stats", "--patterns", pats.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("STT device footprint by layout"), "{out}");
        for label in ["dense", "banded", "twolevel", "bitmap"] {
            assert!(out.contains(label), "missing {label} in\n{out}");
        }
        assert!(out.contains("of L1"), "{out}");
        assert!(out.contains("of L2"), "{out}");
    }

    #[test]
    fn auto_engine_match_end_to_end() {
        let pats = write_tmp("p16.txt", b"he\nshe\nhers\n");
        let input = write_tmp("i16.txt", b"ushers everywhere");
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "gpu:auto",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches (gpu:auto engine)"), "{out}");
    }

    #[test]
    fn stats_with_input_profiles_visits() {
        let pats = write_tmp("p4.txt", b"he\n");
        let input = write_tmp("i4.txt", b"hehehe there");
        let opts = parse([
            "stats",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("visit profile"), "{out}");
    }

    #[test]
    fn resilient_match_reports_tier_and_faults() {
        let pats = write_tmp("p6.txt", b"he\nshe\nhers\n");
        let input = write_tmp("i6.txt", b"ushers everywhere");
        // Clean resilient run: GPU answers, same count as the serial engine.
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--resilient",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(
            out.contains("4 matches (resilient, answered by gpu)"),
            "{out}"
        );
        // Seeded faults: still 4 matches, and the trace shows what fired.
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--resilient",
            "--fault-seed",
            "3",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("4 matches"), "{out}");
        assert!(out.contains("gpu supervision:"), "{out}");
    }

    #[test]
    fn stats_with_input_reports_launch_diagnostics() {
        let pats = write_tmp("p7.txt", b"he\nshe\n");
        let input = write_tmp("i7.txt", b"ushers share shells here");
        let opts = parse([
            "stats",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("simulated launch (gpu:shared"), "{out}");
        assert!(out.contains("Gb/s"), "{out}");
        assert!(out.contains("per-SM cycles:"), "{out}");
        assert!(out.contains("load imbalance:"), "{out}");
    }

    #[test]
    fn profile_sweeps_gpu_configs_with_stall_breakdowns() {
        let pats = write_tmp("p8.txt", b"he\nshe\nhers\n");
        let input = write_tmp("i8.txt", &b"ushers everywhere ".repeat(200));
        let opts = parse([
            "profile",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        for name in [
            "gpu:shared",
            "gpu:global",
            "gpu:compressed",
            "gpu:banded",
            "gpu:twolevel",
            "gpu:pfac",
        ] {
            assert!(out.contains(name), "missing {name} in\n{out}");
        }
        assert!(out.contains("stall breakdown"), "{out}");
        assert!(out.contains("Fig. 19"), "{out}");
    }

    #[test]
    fn match_writes_trace_and_metrics_files() {
        let pats = write_tmp("p9.txt", b"he\nshe\n");
        let input = write_tmp("i9.txt", &b"ushers everywhere ".repeat(50));
        let trace_path = write_tmp("t9.json", b"");
        let metrics_path = write_tmp("m9.prom", b"");
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("trace written:"), "{out}");
        assert!(out.contains("metrics written:"), "{out}");

        let json = std::fs::read_to_string(&trace_path).unwrap();
        let summary = trace::validate_chrome_json(&json).expect("valid chrome trace");
        assert!(summary.events > 0);
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(prom.contains("# TYPE acsim_launch_cycles gauge"), "{prom}");
        assert!(prom.contains("acsim_throughput_gbps"), "{prom}");
        assert!(prom.contains("acsim_stall_cycles{"), "{prom}");
    }

    #[test]
    fn resilient_match_exports_metrics_as_json() {
        let pats = write_tmp("p10.txt", b"he\nshe\n");
        let input = write_tmp("i10.txt", b"ushers everywhere");
        let metrics_path = write_tmp("m10.json", b"");
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--resilient",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("metrics written:"), "{out}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains("acsim_launch_cycles"), "{json}");
    }

    #[test]
    fn profile_json_emits_machine_readable_rows() {
        let pats = write_tmp("p11.txt", b"he\nshe\n");
        let input = write_tmp("i11.txt", &b"ushers everywhere ".repeat(100));
        let opts = parse([
            "profile",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--json",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        let rows: serde::Value = serde_json::from_str(&out).expect("valid JSON");
        let rows = rows.as_arr().expect("top-level array");
        assert_eq!(rows.len(), 6, "{out}"); // six GPU configs
        let first = rows[0].as_obj().unwrap();
        for field in ["config", "cycles", "gbps", "busy_pct", "stalls"] {
            assert!(serde::obj_get(first, field).is_some(), "missing {field}");
        }
    }

    #[test]
    fn explain_ranks_knobs_and_writes_csv() {
        let pats = write_tmp("p12.txt", b"he\nshe\nhers\n");
        let input = write_tmp("i12.txt", &b"ushers everywhere ".repeat(200));
        let csv = write_tmp("rows12.csv", b"");
        let opts = parse([
            "explain",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--csv-out",
            csv.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("what-if sweep"), "{out}");
        assert!(out.contains("tex-cache x2"), "{out}");
        assert!(out.contains("per-state texture fetches"), "{out}");
        assert!(out.contains("texture-L1 residency"), "{out}");
        assert!(out.contains("conflict degree"), "{out}");
        assert!(out.contains("csv written:"), "{out}");
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with("state,fetches\n"), "{body}");
        assert!(body.lines().count() > 1);
    }

    #[test]
    fn bench_diff_gates_on_regressions() {
        use bench::BenchRow;
        let row = |gbps: f64, cycles: u64| BenchRow {
            approach: "pfac".into(),
            size: 1024,
            patterns: 10,
            gbps,
            cycles,
            idle_cycles: 0,
            stalls: Default::default(),
            p99_latency_us: 0.0,
            jobs_per_sec: 0.0,
            config_hash: 0,
        };
        let old = BenchReport {
            name: "old".into(),
            rows: vec![row(10.0, 1000)],
            provenance: None,
        };
        let new = BenchReport {
            name: "new".into(),
            rows: vec![row(8.0, 1300)],
            provenance: None,
        };
        let old_p = write_tmp("BENCH_old.json", old.to_json().as_bytes());
        let new_p = write_tmp("BENCH_new.json", new.to_json().as_bytes());

        // Self-diff passes.
        let opts = parse([
            "bench",
            "diff",
            old_p.to_str().unwrap(),
            old_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("VERDICT: ok"), "{out}");

        // A 20% throughput drop fails and writes the artifact.
        let report_p = write_tmp("diff13.json", b"");
        let opts = parse([
            "bench",
            "diff",
            old_p.to_str().unwrap(),
            new_p.to_str().unwrap(),
            "--report",
            report_p.to_str().unwrap(),
        ])
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("VERDICT: REGRESSED"), "{err}");
        assert!(err.contains("throughput dropped"), "{err}");
        let artifact = std::fs::read_to_string(&report_p).unwrap();
        assert!(artifact.contains("\"violations\""), "{artifact}");

        // The same diff passes under loose thresholds.
        let opts = parse([
            "bench",
            "diff",
            old_p.to_str().unwrap(),
            new_p.to_str().unwrap(),
            "--max-gbps-drop",
            "50",
            "--max-cycles-rise",
            "50",
        ])
        .unwrap();
        assert!(run(&opts).is_ok());

        // Unreadable reports error cleanly.
        let opts = parse([
            "bench",
            "diff",
            "/nonexistent/a.json",
            new_p.to_str().unwrap(),
        ])
        .unwrap();
        assert!(run(&opts).unwrap_err().contains("reading"));
    }

    #[test]
    fn serve_sim_end_to_end_and_report_artifact() {
        let report_p = write_tmp("serve14.json", b"");
        let opts = parse([
            "serve-sim",
            "--jobs",
            "8",
            "--arrival-rate",
            "2000",
            "--streams",
            "2",
            "--job-bytes",
            "4096",
            "--report",
            report_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("8 jobs offered"), "{out}");
        assert!(out.contains("adaptive batching"), "{out}");
        assert!(out.contains("jobs/sec:"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("report written:"), "{out}");
        let json = std::fs::read_to_string(&report_p).unwrap();
        let back = ac_serve::ServeReport::from_json(&json).expect("valid ServeReport JSON");
        assert_eq!(back.jobs_submitted, 8);
        assert_eq!(back.streams, 2);

        // Per-job mode reports itself as such.
        let opts = parse([
            "serve-sim",
            "--jobs",
            "4",
            "--job-bytes",
            "2048",
            "--no-batch",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("per-job launches"), "{out}");
    }

    #[test]
    fn serve_sim_pool_summary_and_stats_artifact() {
        let stats_p = write_tmp("pool21.json", b"");
        let opts = parse([
            "serve-sim",
            "--jobs",
            "8",
            "--arrival-rate",
            "2000",
            "--streams",
            "2",
            "--pool",
            "--pool-stats",
            stats_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("device pool:"), "{out}");
        assert!(out.contains("pinned host staging"), "{out}");
        assert!(out.contains("pool stats written:"), "{out}");
        let json = std::fs::read_to_string(&stats_p).unwrap();
        let back: ac_serve::PoolStatsReport =
            serde_json::from_str(&json).expect("valid pool stats JSON");
        assert!(back.acquires > 0);
        assert_eq!(back.releases, back.acquires);

        // The churn baseline labels itself, and fleet-sim carries the
        // summary too (merged across its per-device pools).
        let opts = parse(["serve-sim", "--jobs", "4", "--pool-churn"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("churn baseline"), "{out}");
        let opts = parse(["fleet-sim", "--devices", "2", "--jobs", "16", "--pool"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("device pool:"), "{out}");

        // No pool flags: no pool section anywhere in the output.
        let opts = parse(["serve-sim", "--jobs", "4"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(!out.contains("device pool:"), "{out}");
    }

    #[test]
    fn fleet_sim_end_to_end_and_report_artifact() {
        let report_p = write_tmp("fleet20.json", b"");
        let opts = parse([
            "fleet-sim",
            "--devices",
            "2",
            "--jobs",
            "32",
            "--arrival-rate",
            "200000",
            "--streams",
            "1",
            "--report",
            report_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("2 device(s)"), "{out}");
        assert!(out.contains("calibrated cost routing"), "{out}");
        assert!(out.contains("shared bus:"), "{out}");
        assert!(out.contains("per device:"), "{out}");
        assert!(out.contains("gpu0:"), "{out}");
        assert!(out.contains("gpu1:"), "{out}");
        assert!(out.contains("routing:"), "{out}");
        assert!(out.contains("cost models:"), "{out}");
        assert!(out.contains("report written:"), "{out}");
        let json = std::fs::read_to_string(&report_p).unwrap();
        let back = ac_serve::FleetReport::from_json(&json).expect("valid FleetReport JSON");
        assert_eq!(back.devices, 2);
        assert_eq!(back.serve.jobs_submitted, 32);
        assert_eq!(back.per_device.len(), 2);

        // Parity mode reports itself and carries no routing tables.
        let opts = parse(["fleet-sim", "--devices", "1", "--no-routing", "--jobs", "8"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("parity dispatch"), "{out}");
        assert!(!out.contains("routing:"), "{out}");
    }

    #[test]
    fn fleet_sim_exports_device_tagged_telemetry() {
        let trace_p = write_tmp("fleet21_t.json", b"");
        let opts = parse([
            "fleet-sim",
            "--devices",
            "2",
            "--jobs",
            "16",
            "--arrival-rate",
            "400000",
            "--streams",
            "1",
            "--trace-out",
            trace_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("trace written:"), "{out}");
        let json = std::fs::read_to_string(&trace_p).unwrap();
        let summary = trace::validate_chrome_json(&json).expect("valid chrome trace");
        assert!(summary.events > 0, "{summary:?}");
        // Device 1's stream ops land in its own pid plane in the stitched
        // trace (device_pid_base remaps them past device 0's block).
        let events = trace::parse_chrome_json(&json, 1.0).expect("parseable trace");
        let base1 = gpu_sim::device_pid_base(1);
        assert!(
            events.iter().any(|e| e.pid >= base1),
            "no device-1 pid plane in trace"
        );
        // The recorded trace still feeds `slo-report`.
        let opts = parse(["slo-report", trace_p.to_str().unwrap()]).unwrap();
        let report = run(&opts).unwrap();
        assert!(report.contains("slo-report:"), "{report}");
    }

    #[test]
    fn serve_sim_exports_telemetry_and_slo_report_renders() {
        let trace_p = write_tmp("serve17_t.json", b"");
        let metrics_p = write_tmp("serve17_m.prom", b"");
        let opts = parse([
            "serve-sim",
            "--jobs",
            "12",
            "--arrival-rate",
            "4000",
            "--streams",
            "2",
            "--trace-out",
            trace_p.to_str().unwrap(),
            "--metrics-out",
            metrics_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("trace written:"), "{out}");
        assert!(out.contains("metrics written:"), "{out}");

        // The trace on disk is a valid Chrome export with job spans.
        let json = std::fs::read_to_string(&trace_p).unwrap();
        let summary = trace::validate_chrome_json(&json).expect("valid chrome trace");
        assert!(summary.spans > 0, "{summary:?}");
        // The metrics snapshot carries the terminal report plus the
        // sampled series.
        let prom = std::fs::read_to_string(&metrics_p).unwrap();
        assert!(prom.contains("acsim_serve_jobs_completed"), "{prom}");
        assert!(prom.contains("acsim_serve_sample_p99_us{"), "{prom}");

        // The recorded trace feeds `slo-report` directly.
        let opts = parse(["slo-report", trace_p.to_str().unwrap()]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("slo-report:"), "{out}");
        assert!(out.contains("breaker"), "{out}");
        assert!(out.contains("admission:"), "{out}");
        assert!(out.contains("p99 (sampled):"), "{out}");
    }

    #[test]
    fn serve_chaos_exports_the_faulted_run_telemetry() {
        let trace_p = write_tmp("serve18_t.json", b"");
        let opts = parse([
            "serve-sim",
            "--chaos",
            "--trace-out",
            trace_p.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("trace written:"), "{out}");
        let json = std::fs::read_to_string(&trace_p).unwrap();
        trace::validate_chrome_json(&json).expect("valid chrome trace");
        // The storm trips the breaker, so the incident narrative names
        // the transitions and the degraded window.
        let opts = parse(["slo-report", trace_p.to_str().unwrap()]).unwrap();
        let report = run(&opts).unwrap();
        assert!(report.contains("breaker timeline:"), "{report}");
        assert!(
            report.contains("breaker-open") || report.contains("open"),
            "{report}"
        );
        assert!(report.contains("worst-latency exemplars:"), "{report}");
    }

    #[test]
    fn slo_report_rejects_garbage_traces() {
        let bogus = write_tmp("bogus19.json", b"{\"traceEvents\": \"nope\"}");
        let opts = parse(["slo-report", bogus.to_str().unwrap()]).unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("not a valid chrome trace"), "{err}");
        let opts = parse(["slo-report", "/nonexistent/t.json"]).unwrap();
        assert!(run(&opts).unwrap_err().contains("reading"));
    }

    #[test]
    fn escape_decoding() {
        assert_eq!(decode_escapes("ab").unwrap(), b"ab");
        assert_eq!(decode_escapes(r"a\x00b").unwrap(), vec![b'a', 0, b'b']);
        assert_eq!(
            decode_escapes(r"\\\t\n").unwrap(),
            vec![b'\\', b'\t', b'\n']
        );
        assert!(decode_escapes(r"\q").is_err());
        assert!(decode_escapes(r"\x9").is_err());
        assert!(decode_escapes("trailing\\").is_err());
    }

    #[test]
    fn binary_patterns_via_escapes() {
        let pats = write_tmp("p5.txt", b"\\x90\\x90\\x90\n");
        let input = write_tmp("i5.bin", &[0u8, 0x90, 0x90, 0x90, 1]);
        let opts = parse([
            "match",
            "--patterns",
            pats.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--engine",
            "gpu:shared",
        ])
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("1 matches"), "{out}");
    }

    #[test]
    fn missing_files_error_cleanly() {
        let opts = parse([
            "match",
            "--patterns",
            "/nonexistent/p.txt",
            "--input",
            "/nonexistent/i.txt",
        ])
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("reading patterns"));
    }
}
