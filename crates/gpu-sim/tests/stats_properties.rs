//! Property tests for the statistics algebra: device-level aggregation
//! merges per-SM counters, so `SmStats::merge` must behave like a proper
//! commutative monoid on the summed counters, take the max for `cycles`
//! (wall time is the slowest SM), and never lose stall attribution.

use gpu_sim::{SmStats, StallReason};
use proptest::prelude::*;

/// Build an SmStats whose every field is driven by the input vector.
fn stats_from(v: &[u64]) -> SmStats {
    let mut s = SmStats {
        instructions: v[0],
        global_requests: v[1],
        global_transactions: v[2],
        global_bytes: v[3],
        tex_fetches: v[4],
        tex_misses: v[5],
        tex_l2_misses: v[6],
        const_reads: v[7],
        const_replays: v[8],
        const_misses: v[9],
        shared_conflicts: v[10],
        barriers: v[11],
        cycles: v[12],
        ..Default::default()
    };
    s.shared_conflict_passes.events = v[13];
    s.shared_conflict_passes.total = v[14];
    s.shared_conflict_passes.max = v[15];
    let reasons = StallReason::all();
    for (i, &r) in reasons.iter().enumerate() {
        s.stalls.add(r, v[16 + i]);
    }
    s.idle_cycles = s.stalls.total();
    s
}

fn merged(a: &SmStats, b: &SmStats) -> SmStats {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1_000_000, 22..23),
        ys in proptest::collection::vec(0u64..1_000_000, 22..23),
    ) {
        let (a, b) = (stats_from(&xs), stats_from(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1_000_000, 22..23),
        ys in proptest::collection::vec(0u64..1_000_000, 22..23),
        zs in proptest::collection::vec(0u64..1_000_000, 22..23),
    ) {
        let (a, b, c) = (stats_from(&xs), stats_from(&ys), stats_from(&zs));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn default_is_the_identity(
        xs in proptest::collection::vec(0u64..1_000_000, 22..23),
    ) {
        let a = stats_from(&xs);
        prop_assert_eq!(merged(&a, &SmStats::default()), a.clone());
        prop_assert_eq!(merged(&SmStats::default(), &a), a);
    }

    #[test]
    fn merge_sums_counters_and_maxes_cycles(
        xs in proptest::collection::vec(0u64..1_000_000, 22..23),
        ys in proptest::collection::vec(0u64..1_000_000, 22..23),
    ) {
        let (a, b) = (stats_from(&xs), stats_from(&ys));
        let m = merged(&a, &b);
        // Summed counters.
        prop_assert_eq!(m.instructions, a.instructions + b.instructions);
        prop_assert_eq!(m.global_requests, a.global_requests + b.global_requests);
        prop_assert_eq!(m.global_transactions, a.global_transactions + b.global_transactions);
        prop_assert_eq!(m.global_bytes, a.global_bytes + b.global_bytes);
        prop_assert_eq!(m.tex_fetches, a.tex_fetches + b.tex_fetches);
        prop_assert_eq!(m.tex_misses, a.tex_misses + b.tex_misses);
        prop_assert_eq!(m.tex_l2_misses, a.tex_l2_misses + b.tex_l2_misses);
        prop_assert_eq!(m.const_reads, a.const_reads + b.const_reads);
        prop_assert_eq!(m.const_replays, a.const_replays + b.const_replays);
        prop_assert_eq!(m.const_misses, a.const_misses + b.const_misses);
        prop_assert_eq!(m.shared_conflicts, a.shared_conflicts + b.shared_conflicts);
        prop_assert_eq!(m.barriers, a.barriers + b.barriers);
        prop_assert_eq!(m.idle_cycles, a.idle_cycles + b.idle_cycles);
        for r in StallReason::all() {
            prop_assert_eq!(m.stalls.get(r), a.stalls.get(r) + b.stalls.get(r));
        }
        // Wall time takes the slowest SM, not the sum.
        prop_assert_eq!(m.cycles, a.cycles.max(b.cycles));
        // The stall-attribution invariant survives merging.
        prop_assert_eq!(m.stalls.total(), m.idle_cycles);
    }
}
