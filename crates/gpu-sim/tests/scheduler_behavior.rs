//! Behavioural tests of the warp scheduler: latency hiding, barriers,
//! occupancy and fairness — the mechanisms behind paper Fig. 19.

use gpu_sim::{
    GpuConfig, GpuDevice, LaunchConfig, StepOutcome, WarpCtx, WarpGeometry, WarpProgram,
};

/// A memory-heavy program: `rounds` dependent global loads per warp.
struct LoadLoop {
    geom: WarpGeometry,
    base: u64,
    rounds: u32,
    done: u32,
}

impl WarpProgram for LoadLoop {
    fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
        if self.done == self.rounds {
            return StepOutcome::Finished;
        }
        let n = self.geom.warp_size as usize;
        // Scattered addresses so every round costs real DRAM time.
        let addrs: Vec<Option<u64>> = (0..n)
            .map(|l| {
                Some(
                    self.base
                        + (self.geom.global_thread(l as u32) * 131 + self.done as u64 * 17) % 4096,
                )
            })
            .collect();
        let mut out = vec![0u8; n];
        ctx.global_read_u8(&addrs, &mut out);
        self.done += 1;
        StepOutcome::Continue
    }
}

fn run_load_loop(cfg: GpuConfig, lc: LaunchConfig, rounds: u32) -> gpu_sim::LaunchStats {
    let mut dev = GpuDevice::new(cfg).expect("device bring-up");
    let base = dev.alloc_global(8192).unwrap();
    let launched = dev
        .launch(lc, |geom| LoadLoop {
            geom,
            base,
            rounds,
            done: 0,
        })
        .expect("launch");
    launched.stats
}

/// Paper Fig. 19(a): with more resident warps, the same total memory work
/// finishes in less wall time because stalls overlap.
#[test]
fn more_resident_warps_hide_latency() {
    let cfg = GpuConfig::tiny_test();
    // 8 warps of work in both cases; residency differs via the cap.
    let total_blocks = 8; // 1 warp per block on the tiny device (tpb=4=warp)
    let narrow = run_load_loop(
        cfg,
        LaunchConfig {
            grid_blocks: total_blocks,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: Some(1),
        },
        16,
    );
    let wide = run_load_loop(
        cfg,
        LaunchConfig {
            grid_blocks: total_blocks,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: Some(2),
        },
        16,
    );
    assert!(
        wide.cycles < narrow.cycles,
        "2 resident blocks ({}) should beat 1 ({})",
        wide.cycles,
        narrow.cycles
    );
    // And the narrow run should show more idle (unhidden stall) cycles.
    assert!(wide.totals.idle_cycles < narrow.totals.idle_cycles);
}

/// A compute-only program (no memory): wall time is issue-bound and adding
/// residency cannot help, pinning the other side of Fig. 19.
struct Spin {
    rounds: u32,
    done: u32,
}

impl WarpProgram for Spin {
    fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
        if self.done == self.rounds {
            return StepOutcome::Finished;
        }
        ctx.compute(8);
        self.done += 1;
        StepOutcome::Continue
    }
}

#[test]
fn compute_bound_work_is_issue_limited() {
    let cfg = GpuConfig::tiny_test();
    let lc = |cap| LaunchConfig {
        grid_blocks: 8,
        threads_per_block: 4,
        shared_bytes_per_block: 0,
        resident_blocks_cap: cap,
    };
    let run = |cap| {
        let mut dev = GpuDevice::new(cfg).unwrap();
        dev.launch(lc(cap), |_| Spin {
            rounds: 32,
            done: 0,
        })
        .unwrap()
        .stats
    };
    let narrow = run(Some(1));
    let wide = run(Some(2));
    // Total issue cycles are fixed: 8 blocks × 32 rounds × (2 base + 8
    // compute) = 2560; residency only removes (already tiny) boundary
    // effects.
    let total_issue = 8 * 32 * (2 + 8);
    assert!(narrow.cycles >= total_issue);
    assert!(wide.cycles >= total_issue);
    let diff = narrow.cycles.abs_diff(wide.cycles);
    assert!(
        diff * 20 < narrow.cycles,
        "residency changed compute-bound time by {diff}"
    );
}

/// A two-phase program with one barrier; phase order must be strict per
/// block: no warp may observe phase-2 effects before all warps of the
/// block wrote phase-1 data.
struct BarrierOrder {
    geom: WarpGeometry,
    phase: u32,
    observed: Vec<u32>,
}

impl WarpProgram for BarrierOrder {
    fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
        let n = self.geom.warp_size as usize;
        match self.phase {
            0 => {
                // Each warp writes its id into its slot of shared memory.
                let writes: Vec<Option<(u64, u32)>> = (0..n)
                    .map(|l| {
                        if l == 0 {
                            Some((
                                self.geom.warp_in_block as u64 * 4,
                                self.geom.warp_in_block + 1,
                            ))
                        } else {
                            None
                        }
                    })
                    .collect();
                ctx.shared_write_u32(&writes);
                self.phase = 1;
                StepOutcome::Continue
            }
            1 => {
                self.phase = 2;
                StepOutcome::Barrier
            }
            2 => {
                // Read every warp's slot; all must be visible.
                let warps = self.geom.threads_per_block / self.geom.warp_size;
                let addrs: Vec<Option<u64>> = (0..n)
                    .map(|l| Some((l as u64 % warps as u64) * 4))
                    .collect();
                let mut out = vec![0u8; n];
                ctx.shared_read_u8(&addrs, &mut out);
                self.observed = out.iter().take(warps as usize).map(|&b| b as u32).collect();
                self.phase = 3;
                StepOutcome::Finished
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn barrier_publishes_all_warps_writes() {
    let cfg = GpuConfig::tiny_test();
    let mut dev = GpuDevice::new(cfg).unwrap();
    let lc = LaunchConfig {
        grid_blocks: 4,
        threads_per_block: 8, // 2 warps per block
        shared_bytes_per_block: 64,
        resident_blocks_cap: None,
    };
    let launched = dev
        .launch(lc, |geom| BarrierOrder {
            geom,
            phase: 0,
            observed: Vec::new(),
        })
        .unwrap();
    assert_eq!(launched.stats.totals.barriers, 4);
    for (geom, p) in &launched.programs {
        assert_eq!(
            p.observed,
            vec![1, 2],
            "block {} warp {} saw incomplete phase-1 data",
            geom.block_id,
            geom.warp_in_block
        );
    }
}

/// Blocks beyond the residency limit run after earlier ones retire, and
/// every block completes exactly once (the retirement/activation path).
#[test]
fn block_cycling_completes_all_blocks() {
    let cfg = GpuConfig::tiny_test(); // max 2 resident blocks
    let mut dev = GpuDevice::new(cfg).unwrap();
    let base = dev.alloc_global(4096).unwrap();
    let lc = LaunchConfig {
        grid_blocks: 13,
        threads_per_block: 4,
        shared_bytes_per_block: 0,
        resident_blocks_cap: None,
    };
    let launched = dev
        .launch(lc, |geom| LoadLoop {
            geom,
            base,
            rounds: 3,
            done: 0,
        })
        .unwrap();
    let mut blocks: Vec<u32> = launched.programs.iter().map(|(g, _)| g.block_id).collect();
    blocks.sort_unstable();
    blocks.dedup();
    assert_eq!(blocks, (0..13).collect::<Vec<u32>>());
}

/// The cap saturates at hardware limits: requesting more residency than
/// the hardware allows changes nothing.
#[test]
fn resident_cap_cannot_exceed_hardware() {
    let cfg = GpuConfig::tiny_test(); // hardware max 2 blocks
    let a = run_load_loop(
        cfg,
        LaunchConfig {
            grid_blocks: 8,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: Some(2),
        },
        8,
    );
    let b = run_load_loop(
        cfg,
        LaunchConfig {
            grid_blocks: 8,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: Some(999),
        },
        8,
    );
    assert_eq!(a.cycles, b.cycles);
}

/// Round-robin fairness: warps of one block make interleaved progress —
/// with two identical warps, neither finishes more than one full pass
/// ahead (checked via instruction counts being equal at the end and the
/// schedule being deterministic).
#[test]
fn launches_are_deterministic() {
    let cfg = GpuConfig::tiny_test();
    let lc = LaunchConfig {
        grid_blocks: 6,
        threads_per_block: 8,
        shared_bytes_per_block: 32,
        resident_blocks_cap: None,
    };
    let run = || {
        let mut dev = GpuDevice::new(cfg).unwrap();
        let base = dev.alloc_global(4096).unwrap();
        dev.launch(lc, |geom| LoadLoop {
            geom,
            base,
            rounds: 5,
            done: 0,
        })
        .unwrap()
        .stats
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.per_sm_cycles, b.per_sm_cycles);
    assert_eq!(a.totals.instructions, b.totals.instructions);
}

/// Mismatched barriers (a kernel bug) must be detected loudly, not hang.
struct OneSidedBarrier {
    geom: WarpGeometry,
    synced: bool,
}

impl WarpProgram for OneSidedBarrier {
    fn step(&mut self, _ctx: &mut WarpCtx<'_>) -> StepOutcome {
        if self.geom.warp_in_block == 0 && !self.synced {
            self.synced = true;
            StepOutcome::Barrier // warp 0 syncs; warp 1 never does
        } else {
            StepOutcome::Finished
        }
    }
}

#[test]
fn mismatched_barrier_release_on_exit() {
    // CUDA calls this UB; our scheduler resolves it the permissive way
    // (a warp exiting counts toward barrier release) *or* panics — it
    // must not hang. The current implementation releases.
    let cfg = GpuConfig::tiny_test();
    let mut dev = GpuDevice::new(cfg).unwrap();
    let lc = LaunchConfig {
        grid_blocks: 1,
        threads_per_block: 8,
        shared_bytes_per_block: 0,
        resident_blocks_cap: None,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.launch(lc, |geom| OneSidedBarrier {
            geom,
            synced: false,
        })
        .map(|l| l.stats.cycles)
    }));
    match result {
        Ok(Ok(cycles)) => assert!(cycles > 0),
        Ok(Err(e)) => panic!("launch error: {e}"),
        Err(_) => { /* a detected-deadlock panic is also acceptable */ }
    }
}
