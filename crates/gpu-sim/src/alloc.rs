//! A real device-memory allocator: free list with coalescing behind the
//! bump frontier.
//!
//! The original `alloc_global` was a bump pointer — allocations only ever
//! grew, nothing could be returned, and a long-running server leaked its
//! whole device. [`DeviceAllocator`] keeps the same observable layout for
//! a pure alloc sequence (256-byte aligned bases carved off a growing
//! frontier, identical OOM points) but adds [`DeviceAllocator::free`]:
//! freed blocks enter a sorted free list, adjacent blocks coalesce, a
//! block ending at the frontier retreats it, and later allocations are
//! served first-fit from the list before the frontier moves. Every
//! operation also charges a host-side cycle cost ([`ALLOC_CYCLES`] /
//! [`FREE_CYCLES`], the `cudaMalloc`/`cudaFree` driver round-trip) into
//! [`AllocStats`] — the serving layer prices its per-batch allocation
//! churn from that ledger, never the kernel clock, so arming nothing
//! leaves kernel timing bit-identical.

use crate::error::DeviceError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Host cycles one device allocation costs (the `cudaMalloc` driver
/// round-trip: ~8 µs at the GTX 285's 1.476 GHz shader clock).
pub const ALLOC_CYCLES: u64 = 12_000;

/// Host cycles one free costs (`cudaFree` synchronises less state).
pub const FREE_CYCLES: u64 = 6_000;

/// CUDA-style allocation alignment.
pub const ALLOC_ALIGN: u64 = 256;

/// Cumulative allocator activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Payload bytes currently live (as requested, before alignment).
    pub live_bytes: u64,
    /// Blocks currently live.
    pub live_blocks: u64,
    /// Largest aligned footprint ever resident at once.
    pub high_water_bytes: u64,
    /// Host cycles charged to allocation/free driver calls.
    pub host_cycles: u64,
}

/// First-fit free-list allocator over a fixed device capacity.
///
/// Blocks occupy `[base, base + aligned_len)` where `aligned_len` rounds
/// the request up to [`ALLOC_ALIGN`]; bases are therefore always aligned
/// and freed neighbours are exactly contiguous, so coalescing needs no
/// padding arithmetic.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    capacity: u64,
    /// Bump frontier: everything at or past it has never been allocated.
    cursor: u64,
    /// Sorted, coalesced free blocks `(base, aligned_len)` below the
    /// frontier.
    free: Vec<(u64, u64)>,
    /// Live blocks: base → (aligned_len, requested_bytes).
    live: BTreeMap<u64, (u64, u64)>,
    /// Aligned bytes currently occupied by live blocks.
    in_use: u64,
    stats: AllocStats,
}

impl DeviceAllocator {
    /// An empty allocator over `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        DeviceAllocator {
            capacity,
            cursor: 0,
            free: Vec::new(),
            live: BTreeMap::new(),
            in_use: 0,
            stats: AllocStats::default(),
        }
    }

    /// Total device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The bump frontier: one past the highest byte ever allocated. The
    /// device's backing store only needs to cover this much.
    pub fn frontier(&self) -> u64 {
        self.cursor
    }

    /// Cumulative statistics (live/leak counters included).
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// The largest single allocation that would currently succeed.
    pub fn largest_free(&self) -> u64 {
        let tail = self
            .capacity
            .saturating_sub(self.cursor.next_multiple_of(ALLOC_ALIGN));
        self.free.iter().map(|&(_, len)| len).fold(tail, u64::max)
    }

    fn aligned_len(bytes: u64) -> Result<u64, DeviceError> {
        bytes
            .max(1)
            .checked_next_multiple_of(ALLOC_ALIGN)
            .ok_or(DeviceError::AddressOverflow)
    }

    /// Allocate `bytes`, 256-byte aligned. Freed space is reused
    /// first-fit before the frontier grows; the OOM error reports the
    /// real headroom (largest contiguous region, free list included) —
    /// the bump allocator under-reported it as `capacity - frontier`.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, DeviceError> {
        let len = Self::aligned_len(bytes)?;
        // First fit from the free list.
        if let Some(i) = self.free.iter().position(|&(_, flen)| flen >= len) {
            let (base, flen) = self.free[i];
            if flen == len {
                self.free.remove(i);
            } else {
                self.free[i] = (base + len, flen - len);
            }
            self.finish_alloc(base, len, bytes);
            return Ok(base);
        }
        // Grow the frontier.
        let base = self.cursor.next_multiple_of(ALLOC_ALIGN);
        let end = base
            .checked_add(bytes)
            .ok_or(DeviceError::AddressOverflow)?;
        if end > self.capacity {
            return Err(DeviceError::OutOfDeviceMemory {
                requested: bytes,
                available: self.largest_free(),
                capacity: self.capacity,
            });
        }
        // The last block may be alignment-clipped by capacity; live
        // bookkeeping uses the clipped length so `in_use` never exceeds
        // the device.
        let len = len.min(self.capacity - base);
        self.cursor = base + len;
        self.finish_alloc(base, len, bytes);
        Ok(base)
    }

    fn finish_alloc(&mut self, base: u64, len: u64, requested: u64) {
        self.live.insert(base, (len, requested));
        self.in_use += len;
        self.stats.allocs += 1;
        self.stats.live_blocks += 1;
        self.stats.live_bytes += requested;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.in_use);
        self.stats.host_cycles += ALLOC_CYCLES;
    }

    /// Return a block obtained from [`DeviceAllocator::alloc`]. Coalesces
    /// with adjacent free blocks; a block ending at the frontier retreats
    /// it (re-absorbing any free tail below).
    pub fn free(&mut self, base: u64) -> Result<(), DeviceError> {
        let (len, requested) = self
            .live
            .remove(&base)
            .ok_or(DeviceError::InvalidFree { addr: base })?;
        self.in_use -= len;
        self.stats.frees += 1;
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= requested;
        self.stats.host_cycles += FREE_CYCLES;

        let (mut base, mut len) = (base, len);
        if base + len >= self.cursor {
            // Frontier block: retreat the cursor instead of listing it,
            // then keep absorbing any free block that now ends there.
            self.cursor = base;
            while let Some(i) = self
                .free
                .iter()
                .position(|&(fb, fl)| fb + fl == self.cursor)
            {
                self.cursor = self.free[i].0;
                self.free.remove(i);
            }
            return Ok(());
        }
        // Interior block: insert sorted and coalesce both neighbours.
        let at = self.free.partition_point(|&(fb, _)| fb < base);
        if at < self.free.len() && base + len == self.free[at].0 {
            len += self.free[at].1;
            self.free.remove(at);
        }
        if at > 0 && {
            let (pb, pl) = self.free[at - 1];
            pb + pl == base
        } {
            let (pb, pl) = self.free[at - 1];
            base = pb;
            len += pl;
            self.free[at - 1] = (base, len);
        } else {
            self.free.insert(at, (base, len));
        }
        Ok(())
    }

    /// Whether every allocation has been returned — the serve-path drain
    /// leak check.
    pub fn is_drained(&self) -> bool {
        self.live.is_empty()
    }

    /// Live blocks as `(base, aligned_len)` pairs, ascending (test and
    /// leak-report helper).
    pub fn live_blocks(&self) -> Vec<(u64, u64)> {
        self.live.iter().map(|(&b, &(l, _))| (b, l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_sequence_matches_the_legacy_allocator() {
        let mut a = DeviceAllocator::new(1 << 20);
        assert_eq!(a.alloc(512 * 1024).unwrap(), 0);
        let b = a.alloc(256 * 1024).unwrap();
        assert_eq!(b, 512 * 1024);
        assert!(a.alloc(512 * 1024).is_err());
    }

    #[test]
    fn free_then_alloc_reuses_the_block() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.alloc(4096).unwrap();
        let y = a.alloc(4096).unwrap();
        let _z = a.alloc(4096).unwrap();
        a.free(x).unwrap();
        a.free(y).unwrap();
        // x and y coalesced: an 8 KB request fits in the hole.
        let w = a.alloc(8192).unwrap();
        assert_eq!(w, x);
        assert_eq!(a.stats().allocs, 4);
        assert_eq!(a.stats().frees, 2);
    }

    #[test]
    fn frontier_retreats_when_the_tail_is_freed() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.alloc(1024).unwrap();
        let y = a.alloc(1024).unwrap();
        let before = a.frontier();
        a.free(x).unwrap();
        assert_eq!(a.frontier(), before, "interior free keeps the frontier");
        a.free(y).unwrap();
        assert_eq!(a.frontier(), 0, "tail free re-absorbs the free run");
        assert!(a.is_drained());
    }

    #[test]
    fn oom_reports_the_real_headroom_after_frees() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.alloc(512 * 1024).unwrap();
        a.alloc(256 * 1024).unwrap();
        a.free(x).unwrap();
        // The bump view says only 256 KB remain past the frontier; the
        // real largest hole is the freed 512 KB block.
        let err = a.alloc(1 << 20).unwrap_err();
        match err {
            DeviceError::OutOfDeviceMemory { available, .. } => {
                assert_eq!(available, 512 * 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(a.alloc(512 * 1024).unwrap(), 0, "hole is reusable");
    }

    #[test]
    fn double_free_and_unknown_free_are_typed_errors() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.alloc(64).unwrap();
        a.free(x).unwrap();
        assert!(matches!(
            a.free(x),
            Err(DeviceError::InvalidFree { addr }) if addr == x
        ));
        assert!(matches!(
            a.free(12345),
            Err(DeviceError::InvalidFree { .. })
        ));
    }

    #[test]
    fn stats_track_live_and_high_water() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(3000).unwrap();
        let s = a.stats();
        assert_eq!(s.live_bytes, 4000);
        assert_eq!(s.live_blocks, 2);
        assert_eq!(s.high_water_bytes, 1024 + 3072);
        assert_eq!(s.host_cycles, 2 * ALLOC_CYCLES);
        a.free(x).unwrap();
        a.free(y).unwrap();
        let s = a.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.high_water_bytes, 1024 + 3072, "high water is sticky");
        assert_eq!(s.host_cycles, 2 * ALLOC_CYCLES + 2 * FREE_CYCLES);
    }
}
