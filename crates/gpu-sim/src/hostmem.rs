//! Pinned vs pageable host memory for PCIe transfer pricing.
//!
//! CUDA DMA engines can only read page-locked ("pinned") host memory. A
//! transfer from pageable memory therefore pays a hidden host-side hop:
//! the driver memcpy's the payload into an internal pinned staging buffer
//! first, and the effective bandwidth collapses to the staging copy's
//! rate composed with the link ("To Use or Not to Use GPUs", PAPERS.md,
//! measures this as the dominant small-job cost). [`HostMemory`] is the
//! single switch for that model:
//!
//! * [`HostMemory::pinned`] — DMA straight from host memory at full link
//!   speed. This is the **default** and reproduces the legacy pricing
//!   bit-for-bit: the original model silently assumed pinned staging.
//! * [`HostMemory::pageable_default`] — every byte crosses host memory
//!   twice (app buffer → staging, staging → link), so the serial transfer
//!   time adds a `bytes / staging_bandwidth` term and the shared host bus
//!   sees twice the bytes.

use serde::{Deserialize, Serialize};

/// Effective memcpy bandwidth of the host-side staging copy for the
/// pageable default (DDR2/3-era host, matching the GTX 285 setting).
pub const PAGEABLE_STAGING_BYTES_PER_SEC: f64 = 3.2e9;

/// Where H2D/D2H payloads live on the host, which sets transfer pricing.
/// Pinned (page-locked) memory DMAs at full link speed; pageable memory
/// stages through a pinned bounce buffer at `staging_bytes_per_sec`,
/// serial with the link transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostMemory {
    /// Whether the host buffer is page-locked (DMA-able directly).
    pub pinned: bool,
    /// Host-side memcpy bandwidth of the staging hop; only consulted when
    /// `pinned` is false.
    pub staging_bytes_per_sec: f64,
}

impl Default for HostMemory {
    fn default() -> Self {
        // The legacy transfer model priced every copy at link speed,
        // i.e. it assumed pinned staging; keeping that default means
        // existing configs and committed bench rows do not move.
        HostMemory::pinned()
    }
}

impl HostMemory {
    /// Page-locked host memory: transfers run at full link speed.
    pub fn pinned() -> Self {
        HostMemory {
            pinned: true,
            staging_bytes_per_sec: 0.0,
        }
    }

    /// The default pageable model for a gen2-era host.
    pub fn pageable_default() -> Self {
        HostMemory {
            pinned: false,
            staging_bytes_per_sec: PAGEABLE_STAGING_BYTES_PER_SEC,
        }
    }

    /// Whether transfers run at full link speed.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Wall-clock seconds for one transfer of `bytes` over a link with
    /// the given bandwidth and latency. Pageable memory adds the staging
    /// memcpy serially — the driver finishes the bounce copy before the
    /// DMA engine starts.
    pub fn transfer_seconds(&self, bytes: usize, link_bytes_per_sec: f64, latency_sec: f64) -> f64 {
        let link = if link_bytes_per_sec > 0.0 {
            bytes as f64 / link_bytes_per_sec
        } else {
            0.0
        };
        if self.pinned {
            return latency_sec + link;
        }
        let staging = if self.staging_bytes_per_sec > 0.0 {
            bytes as f64 / self.staging_bytes_per_sec
        } else {
            0.0
        };
        latency_sec + staging + link
    }

    /// Bytes the shared host-side bus observes for a transfer of `bytes`:
    /// pageable payloads cross host memory twice (bounce-in + DMA-out).
    pub fn bus_bytes(&self, bytes: u64) -> u64 {
        if self.pinned {
            bytes
        } else {
            bytes.saturating_mul(2)
        }
    }

    /// Reject non-finite or negative staging bandwidth.
    pub fn validate(&self) -> Result<(), String> {
        if !self.pinned
            && (!self.staging_bytes_per_sec.is_finite() || self.staging_bytes_per_sec < 0.0)
        {
            return Err(format!(
                "pageable staging bandwidth must be finite and non-negative, got {}",
                self.staging_bytes_per_sec
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_matches_the_legacy_link_formula() {
        let t = HostMemory::pinned().transfer_seconds(6_000_000, 6.0e9, 10.0e-6);
        assert_eq!(t, 10.0e-6 + 6_000_000.0 / 6.0e9);
    }

    #[test]
    fn pageable_is_never_faster_than_pinned() {
        let page = HostMemory::pageable_default();
        for bytes in [0usize, 1, 4096, 1 << 20, 100 << 20] {
            let pin = HostMemory::pinned().transfer_seconds(bytes, 6.0e9, 10.0e-6);
            let pg = page.transfer_seconds(bytes, 6.0e9, 10.0e-6);
            assert!(pg >= pin, "{bytes} bytes: pageable {pg} < pinned {pin}");
            if bytes > 0 {
                assert!(pg > pin, "{bytes} bytes: staging hop must cost something");
            }
        }
    }

    #[test]
    fn pageable_doubles_bus_traffic() {
        assert_eq!(HostMemory::pinned().bus_bytes(4096), 4096);
        assert_eq!(HostMemory::pageable_default().bus_bytes(4096), 8192);
    }

    #[test]
    fn default_is_pinned_and_serde_round_trips() {
        assert!(HostMemory::default().is_pinned());
        let page = HostMemory::pageable_default();
        let json = serde_json::to_string(&page).unwrap();
        let back: HostMemory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn validate_rejects_bad_staging_bandwidth() {
        let bad = HostMemory {
            pinned: false,
            staging_bytes_per_sec: f64::NAN,
        };
        assert!(bad.validate().is_err());
        assert!(HostMemory::pageable_default().validate().is_ok());
        // Pinned memory never consults the staging rate.
        assert!(HostMemory::pinned().validate().is_ok());
    }
}
