//! Deterministic fault injection for the simulated device.
//!
//! Real GPU deployments lose kernels to transient launch failures, failed
//! allocations, driver watchdog kills, and (rarely) corrupted DMA
//! transfers. Real hardware makes those faults impossible to reproduce; the
//! simulator makes them *schedulable*. A [`FaultPlan`] is a pure function
//! of its seed: it names the exact operation indices (the N-th allocation,
//! the N-th launch, the N-th device→host readback) at which a fault fires,
//! so a faulted run can be replayed byte-for-byte and the recovery path
//! proven correct against the CPU oracle.
//!
//! The hook is **zero-cost when disabled**: an unarmed device carries
//! `None` and every probe is a single `Option` check on the host side.
//! Simulated timing and statistics are computed from the kernel's memory
//! traffic alone, so arming an *empty* plan changes nothing either — a
//! property pinned by the `fault_free_runs_are_bit_identical` regression
//! test in the integration suite.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Simulated-cycle penalty added to a launch when a scheduled hang fires.
/// Large enough that any sane watchdog budget trips (at 1.476 GHz this is
/// ~12 simulated minutes), small enough that cycle arithmetic cannot
/// overflow.
pub const HANG_CYCLES: u64 = 1 << 40;

/// The four fault kinds the plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A kernel launch fails before executing (driver-level transient,
    /// like a spurious `CUDA_ERROR_LAUNCH_FAILED`).
    LaunchTransient,
    /// A global-memory allocation fails even though capacity remains
    /// (fragmentation / transient allocator failure).
    AllocFail,
    /// The kernel never completes: its reported cycle count is inflated by
    /// [`HANG_CYCLES`], which an armed watchdog converts into an error.
    KernelHang,
    /// One bit of a device→host readback buffer is flipped in flight.
    ReadbackBitFlip,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub fn all() -> [FaultKind; 4] {
        [
            FaultKind::LaunchTransient,
            FaultKind::AllocFail,
            FaultKind::KernelHang,
            FaultKind::ReadbackBitFlip,
        ]
    }

    /// Stable label used in logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LaunchTransient => "launch-transient",
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::KernelHang => "kernel-hang",
            FaultKind::ReadbackBitFlip => "readback-bit-flip",
        }
    }
}

/// A fault that actually fired, recorded in the injection log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// What fired.
    pub kind: FaultKind,
    /// The per-kind operation index it fired at (the N-th alloc, the N-th
    /// launch, the N-th readback since the state was created).
    pub op_index: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault: {} at op #{}",
            self.kind.label(),
            self.op_index
        )
    }
}

/// A deterministic fault schedule, keyed by per-kind operation indices.
///
/// Construct directly, via the `with_*` builders, or seeded via
/// [`FaultPlan::generate`]. The plan itself is immutable; the mutable
/// counters live in [`FaultState`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Launch indices that fail transiently (before executing).
    pub launch_transient: BTreeSet<u64>,
    /// Allocation indices that fail.
    pub alloc_fail: BTreeSet<u64>,
    /// Launch indices that hang (cycle inflation → watchdog).
    pub kernel_hang: BTreeSet<u64>,
    /// Readback index → (bit offset into the buffer, modulo its length in
    /// bits) for single-bit corruption.
    pub readback_flip: BTreeMap<u64, u64>,
}

impl FaultPlan {
    /// The empty plan: armed but schedules nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.launch_transient.is_empty()
            && self.alloc_fail.is_empty()
            && self.kernel_hang.is_empty()
            && self.readback_flip.is_empty()
    }

    /// Total scheduled faults.
    pub fn len(&self) -> usize {
        self.launch_transient.len()
            + self.alloc_fail.len()
            + self.kernel_hang.len()
            + self.readback_flip.len()
    }

    /// Schedule a transient failure of the `index`-th launch.
    pub fn with_launch_transient(mut self, index: u64) -> Self {
        self.launch_transient.insert(index);
        self
    }

    /// Schedule a failure of the `index`-th allocation.
    pub fn with_alloc_fail(mut self, index: u64) -> Self {
        self.alloc_fail.insert(index);
        self
    }

    /// Schedule a hang of the `index`-th launch.
    pub fn with_kernel_hang(mut self, index: u64) -> Self {
        self.kernel_hang.insert(index);
        self
    }

    /// Schedule a single-bit flip in the `index`-th readback, at
    /// `bit_offset % (8 × buffer length)`.
    pub fn with_readback_flip(mut self, index: u64, bit_offset: u64) -> Self {
        self.readback_flip.insert(index, bit_offset);
        self
    }

    /// The fault kinds this plan schedules.
    pub fn kinds(&self) -> Vec<FaultKind> {
        let mut kinds = Vec::new();
        if !self.launch_transient.is_empty() {
            kinds.push(FaultKind::LaunchTransient);
        }
        if !self.alloc_fail.is_empty() {
            kinds.push(FaultKind::AllocFail);
        }
        if !self.kernel_hang.is_empty() {
            kinds.push(FaultKind::KernelHang);
        }
        if !self.readback_flip.is_empty() {
            kinds.push(FaultKind::ReadbackBitFlip);
        }
        kinds
    }

    /// Generate a plan from a seed: one guaranteed fault of kind
    /// `seed % 4` scheduled within the first few operations, plus up to two
    /// extra faults of seed-chosen kinds. Fully deterministic — the same
    /// seed always yields the same plan.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::default();
        let forced = FaultKind::all()[(seed % 4) as usize];
        plan = plan.schedule(forced, &mut rng);
        for _ in 0..rng.below(3) {
            let kind = FaultKind::all()[rng.below(4) as usize];
            plan = plan.schedule(kind, &mut rng);
        }
        plan
    }

    /// Generate a chaos-soak plan for a sustained multi-launch run (the
    /// serving path): an early kernel hang, a couple of readback
    /// bit-flips, then a contiguous burst of launch transients long
    /// enough to exhaust per-batch retries on several consecutive batches
    /// (which is what trips a consecutive-failure circuit breaker) — and
    /// nothing after the burst, so the run provably recovers. Fully
    /// deterministic in `seed`.
    pub fn generate_chaos(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut plan = FaultPlan::default();
        // One hang among the first few launches: the watchdog kill and
        // retry path is exercised before the breaker ever opens.
        plan = plan.with_kernel_hang(1 + rng.below(2));
        // Two single-bit readback corruptions early on: CRC framing must
        // catch them and the retried batch must still answer correctly.
        let flip_base = 2 + rng.below(2);
        plan = plan.with_readback_flip(flip_base, rng.below(1 << 16));
        plan = plan.with_readback_flip(flip_base + 2, rng.below(1 << 16));
        // The breaker-tripping burst: 10 consecutive launch transients
        // starting a seed-chosen distance into the run. With a 2-attempt
        // supervisor every batch inside the burst fails, so at least four
        // consecutive batches fail outright.
        let burst_start = 8 + rng.below(4);
        for i in 0..10 {
            plan = plan.with_launch_transient(burst_start + i);
        }
        plan
    }

    fn schedule(self, kind: FaultKind, rng: &mut SplitMix64) -> Self {
        match kind {
            // Launch/readback ops happen once per attempt; keep indices
            // small so the fault fires within a bounded-retry window.
            FaultKind::LaunchTransient => self.with_launch_transient(rng.below(2)),
            FaultKind::AllocFail => self.with_alloc_fail(rng.below(6)),
            FaultKind::KernelHang => self.with_kernel_hang(rng.below(2)),
            FaultKind::ReadbackBitFlip => {
                let index = rng.below(2);
                let bit = rng.below(1 << 16);
                self.with_readback_flip(index, bit)
            }
        }
    }
}

/// What the fault hook tells the device to do with a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaunchFault {
    /// Fail the launch before executing.
    Transient(InjectedFault),
    /// Run it, then inflate the reported cycles by [`HANG_CYCLES`].
    Hang(InjectedFault),
}

/// Mutable injection state: the plan plus per-kind operation counters and
/// the log of faults that actually fired. Counters persist across device
/// instances (the host supervisor moves the state between retries), which
/// is what makes "transient" faults transient: the retried operation has a
/// new index and is not scheduled to fail again unless the plan says so.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    allocs: u64,
    launches: u64,
    readbacks: u64,
    log: Vec<InjectedFault>,
}

impl FaultState {
    /// Begin injecting `plan` with fresh counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ..FaultState::default()
        }
    }

    /// The schedule being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault that has fired so far, in firing order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Operation counters `(allocs, launches, readbacks)` consumed so far.
    pub fn ops_seen(&self) -> (u64, u64, u64) {
        (self.allocs, self.launches, self.readbacks)
    }

    /// Account one allocation; returns the fault to raise, if scheduled.
    pub(crate) fn on_alloc(&mut self) -> Option<InjectedFault> {
        let index = self.allocs;
        self.allocs += 1;
        if self.plan.alloc_fail.contains(&index) {
            let fault = InjectedFault {
                kind: FaultKind::AllocFail,
                op_index: index,
            };
            self.log.push(fault);
            Some(fault)
        } else {
            None
        }
    }

    /// Account one launch; returns the scheduled behaviour, if any.
    pub(crate) fn on_launch(&mut self) -> Option<LaunchFault> {
        let index = self.launches;
        self.launches += 1;
        if self.plan.launch_transient.contains(&index) {
            let fault = InjectedFault {
                kind: FaultKind::LaunchTransient,
                op_index: index,
            };
            self.log.push(fault);
            Some(LaunchFault::Transient(fault))
        } else if self.plan.kernel_hang.contains(&index) {
            let fault = InjectedFault {
                kind: FaultKind::KernelHang,
                op_index: index,
            };
            self.log.push(fault);
            Some(LaunchFault::Hang(fault))
        } else {
            None
        }
    }

    /// Account one device→host readback, corrupting `buf` in place if a
    /// flip is scheduled. Returns the fault that fired, if any.
    pub(crate) fn on_readback(&mut self, buf: &mut [u8]) -> Option<InjectedFault> {
        let index = self.readbacks;
        self.readbacks += 1;
        let &bit_offset = self.plan.readback_flip.get(&index)?;
        if buf.is_empty() {
            return None;
        }
        let bit = bit_offset % (buf.len() as u64 * 8);
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
        let fault = InjectedFault {
            kind: FaultKind::ReadbackBitFlip,
            op_index: index,
        };
        self.log.push(fault);
        Some(fault)
    }
}

/// The standard SplitMix64 generator — tiny, seedable, and good enough for
/// scattering fault indices. Kept private to this module so `gpu-sim` needs
/// no RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(
                FaultPlan::generate(seed),
                FaultPlan::generate(seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generation_guarantees_seeded_kind() {
        for seed in 0..64u64 {
            let plan = FaultPlan::generate(seed);
            let forced = FaultKind::all()[(seed % 4) as usize];
            assert!(
                plan.kinds().contains(&forced),
                "seed {seed} missing {forced:?}"
            );
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn chaos_plans_are_deterministic_and_shaped() {
        for seed in 0..32u64 {
            let plan = FaultPlan::generate_chaos(seed);
            assert_eq!(plan, FaultPlan::generate_chaos(seed), "seed {seed}");
            // Shape: a hang, two flips, and a 10-launch transient burst.
            assert_eq!(plan.kernel_hang.len(), 1);
            assert_eq!(plan.readback_flip.len(), 2);
            assert_eq!(plan.launch_transient.len(), 10);
            // The burst is contiguous (consecutive batch failures) and
            // starts after the hang/flip prelude.
            let burst: Vec<u64> = plan.launch_transient.iter().copied().collect();
            for w in burst.windows(2) {
                assert_eq!(w[1], w[0] + 1, "burst must be contiguous");
            }
            assert!(burst[0] > *plan.kernel_hang.iter().next().unwrap());
            // Finite: every scheduled index is bounded, so the run recovers.
            assert!(*burst.last().unwrap() < 64);
        }
    }

    #[test]
    fn counters_fire_at_scheduled_indices() {
        let plan = FaultPlan::none()
            .with_alloc_fail(1)
            .with_launch_transient(0);
        let mut st = FaultState::new(plan);
        assert!(st.on_alloc().is_none()); // alloc #0
        let f = st.on_alloc().expect("alloc #1 scheduled"); // alloc #1
        assert_eq!(f.kind, FaultKind::AllocFail);
        assert!(st.on_alloc().is_none()); // alloc #2
        assert!(matches!(st.on_launch(), Some(LaunchFault::Transient(_))));
        assert!(st.on_launch().is_none()); // launch #1: retry succeeds
        assert_eq!(st.log().len(), 2);
        assert_eq!(st.ops_seen(), (3, 2, 0));
    }

    #[test]
    fn hang_reported_separately_from_transient() {
        let mut st = FaultState::new(FaultPlan::none().with_kernel_hang(0));
        assert!(matches!(st.on_launch(), Some(LaunchFault::Hang(_))));
        assert!(st.on_launch().is_none());
    }

    #[test]
    fn readback_flip_flips_exactly_one_bit() {
        let mut st = FaultState::new(FaultPlan::none().with_readback_flip(0, 13));
        let mut buf = vec![0u8; 4];
        st.on_readback(&mut buf).expect("flip scheduled");
        let set: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(set, 1);
        assert_eq!(buf[1], 1 << 5); // bit 13 = byte 1, bit 5
                                    // Unscheduled readback leaves the buffer alone.
        let mut buf2 = vec![0xFFu8; 4];
        assert!(st.on_readback(&mut buf2).is_none());
        assert_eq!(buf2, vec![0xFF; 4]);
    }

    #[test]
    fn flip_offset_wraps_into_buffer() {
        let mut st = FaultState::new(FaultPlan::none().with_readback_flip(0, 1_000_003));
        let mut buf = vec![0u8; 8]; // 64 bits; 1_000_003 % 64 = 3
        st.on_readback(&mut buf).unwrap();
        assert_eq!(buf[0], 1 << 3);
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..16 {
            assert!(st.on_alloc().is_none());
            assert!(st.on_launch().is_none());
            let mut buf = [7u8; 3];
            assert!(st.on_readback(&mut buf).is_none());
            assert_eq!(buf, [7; 3]);
        }
        assert!(st.log().is_empty());
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(FaultKind::KernelHang.label(), "kernel-hang");
        let f = InjectedFault {
            kind: FaultKind::AllocFail,
            op_index: 3,
        };
        assert_eq!(f.to_string(), "injected fault: alloc-fail at op #3");
    }
}
