//! Typed errors for the device model.
//!
//! Every fallible operation on the simulated device used to report
//! `Result<_, String>`; supervision (retry, degradation) needs to *classify*
//! failures, which strings cannot support. The taxonomy below keeps the
//! original `Display` text stable (existing `err.to_string().contains(...)`
//! assertions keep passing) while making the failure kind inspectable.

use crate::fault::InjectedFault;
use std::fmt;

/// An invalid [`crate::GpuConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpuConfigError {
    /// `num_sms` or `cores_per_sm` is zero.
    ZeroSmsOrCores,
    /// `warp_size` is zero or odd.
    BadWarpSize(u32),
    /// `shared_banks` is zero.
    ZeroBanks,
    /// `max_warps_per_sm` or `max_blocks_per_sm` is zero.
    ZeroResidencyLimits,
    /// `coalesce_segment` is zero or not a power of two.
    BadCoalesceSegment(u32),
    /// `clock_hz` is not positive.
    NonPositiveClock,
    /// `warp_size` or `shared_banks` exceeds the model's 32-lane limit.
    ModelLimits,
    /// `device_mem_bytes` is zero.
    ZeroDeviceMem,
    /// `tex_lanes_per_cycle` is not positive.
    NonPositiveTexRate,
    /// A cache configuration failed validation.
    Cache {
        /// Which cache (`tex_cache`, `tex_l2`, `const_cache`).
        which: &'static str,
        /// The underlying message.
        message: String,
    },
    /// The L2 texture line size does not match the L1 line size.
    MismatchedTexLines,
    /// The DRAM configuration failed validation.
    Dram(String),
}

impl fmt::Display for GpuConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuConfigError::ZeroSmsOrCores => {
                write!(f, "num_sms and cores_per_sm must be positive")
            }
            GpuConfigError::BadWarpSize(w) => {
                write!(f, "warp_size {w} must be a positive even number")
            }
            GpuConfigError::ZeroBanks => write!(f, "shared_banks must be positive"),
            GpuConfigError::ZeroResidencyLimits => {
                write!(f, "resident warp/block limits must be positive")
            }
            GpuConfigError::BadCoalesceSegment(s) => {
                write!(f, "coalesce_segment {s} must be a power of two")
            }
            GpuConfigError::NonPositiveClock => write!(f, "clock_hz must be positive"),
            GpuConfigError::ModelLimits => {
                write!(
                    f,
                    "warp_size and shared_banks are limited to 32 in this model"
                )
            }
            GpuConfigError::ZeroDeviceMem => write!(f, "device_mem_bytes must be positive"),
            GpuConfigError::NonPositiveTexRate => {
                write!(f, "tex_lanes_per_cycle must be positive")
            }
            GpuConfigError::Cache { which, message } => write!(f, "{which}: {message}"),
            GpuConfigError::MismatchedTexLines => {
                write!(
                    f,
                    "tex_l2 line size must match the L1 texture cache line size"
                )
            }
            GpuConfigError::Dram(message) => write!(f, "dram: {message}"),
        }
    }
}

impl std::error::Error for GpuConfigError {}

/// An invalid [`crate::LaunchConfig`] for a given device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The grid has zero blocks.
    EmptyGrid,
    /// `threads_per_block` is zero or not a multiple of the warp size.
    BadThreadsPerBlock {
        /// The offending thread count.
        threads: u32,
        /// The device warp size.
        warp_size: u32,
    },
    /// The block's warp count exceeds the SM limit.
    TooManyWarps {
        /// Warps in the block.
        warps: u32,
        /// The SM's resident-warp limit.
        limit: u32,
    },
    /// The block requests more shared memory than the SM has.
    SharedMemExceeded {
        /// Requested bytes per block.
        requested: u32,
        /// SM shared-memory capacity.
        available: u32,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::EmptyGrid => write!(f, "grid must contain at least one block"),
            LaunchError::BadThreadsPerBlock { threads, warp_size } => write!(
                f,
                "threads_per_block {threads} must be a positive multiple of the warp size \
                 {warp_size}"
            ),
            LaunchError::TooManyWarps { warps, limit } => {
                write!(
                    f,
                    "block has {warps} warps, exceeding the SM limit of {limit}"
                )
            }
            LaunchError::SharedMemExceeded {
                requested,
                available,
            } => write!(
                f,
                "block requests {requested} bytes of shared memory but the SM has {available}"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Any failure of a device operation (bring-up, allocation, launch).
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The device configuration is invalid.
    Config(GpuConfigError),
    /// The launch geometry is invalid.
    Launch(LaunchError),
    /// A global-memory allocation exceeded G-DRAM capacity.
    OutOfDeviceMemory {
        /// Bytes this allocation asked for.
        requested: u64,
        /// Bytes still unallocated (after alignment).
        available: u64,
        /// Total device capacity.
        capacity: u64,
    },
    /// An allocation size overflowed the 64-bit address space.
    AddressOverflow,
    /// `free_global` was handed an address that is not a live allocation
    /// (never allocated, or already freed).
    InvalidFree {
        /// The offending device address.
        addr: u64,
    },
    /// The constant segment is exhausted.
    ConstantExhausted {
        /// Bytes already bound.
        used: usize,
        /// Bytes this binding asked for.
        requested: usize,
        /// Segment capacity.
        capacity: usize,
    },
    /// A constant buffer was invalid (see `constant`).
    ConstantInvalid(String),
    /// A scheduled fault fired (see [`crate::fault`]). Always transient:
    /// the same operation retried later is not scheduled to fail again.
    Fault(InjectedFault),
    /// The kernel exceeded the armed watchdog's cycle budget (either a
    /// genuine runaway kernel or an injected hang).
    Watchdog {
        /// Simulated cycles the launch ran for.
        cycles: u64,
        /// The armed budget it exceeded.
        budget: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Config(e) => write!(f, "{e}"),
            DeviceError::Launch(e) => write!(f, "{e}"),
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes but only {available} of \
                 {capacity} are available"
            ),
            DeviceError::AddressOverflow => {
                write!(f, "allocation size overflows the address space")
            }
            DeviceError::InvalidFree { addr } => {
                write!(
                    f,
                    "invalid free: address {addr:#x} is not a live allocation"
                )
            }
            DeviceError::ConstantExhausted {
                used,
                requested,
                capacity,
            } => write!(
                f,
                "constant segment exhausted: {used} + {requested} bytes exceeds {capacity}"
            ),
            DeviceError::ConstantInvalid(m) => write!(f, "{m}"),
            DeviceError::Fault(fault) => write!(f, "{fault}"),
            DeviceError::Watchdog { cycles, budget } => write!(
                f,
                "watchdog: kernel ran {cycles} cycles, exceeding the {budget}-cycle budget"
            ),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Config(e) => Some(e),
            DeviceError::Launch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuConfigError> for DeviceError {
    fn from(e: GpuConfigError) -> Self {
        DeviceError::Config(e)
    }
}

impl From<LaunchError> for DeviceError {
    fn from(e: LaunchError) -> Self {
        DeviceError::Launch(e)
    }
}

// Compatibility with callers that still aggregate errors as strings (the
// bench harness, example binaries).
impl From<GpuConfigError> for String {
    fn from(e: GpuConfigError) -> Self {
        e.to_string()
    }
}

impl From<LaunchError> for String {
    fn from(e: LaunchError) -> Self {
        e.to_string()
    }
}

impl From<DeviceError> for String {
    fn from(e: DeviceError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_text_is_stable() {
        // Pinned wording: external assertions grep these substrings.
        assert_eq!(
            GpuConfigError::BadWarpSize(7).to_string(),
            "warp_size 7 must be a positive even number"
        );
        assert_eq!(
            LaunchError::EmptyGrid.to_string(),
            "grid must contain at least one block"
        );
        let oom = DeviceError::OutOfDeviceMemory {
            requested: 100,
            available: 10,
            capacity: 50,
        };
        assert!(oom.to_string().contains("out of device memory"));
        assert!(oom.to_string().contains("requested 100 bytes"));
        assert!(oom.to_string().contains("10 of 50"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = DeviceError::Config(GpuConfigError::ZeroBanks);
        assert!(e.source().is_some());
        let e = DeviceError::AddressOverflow;
        assert!(e.source().is_none());
    }
}
