//! The kernel programming model: warp-synchronous programs stepped by the
//! scheduler.
//!
//! A kernel is written as a [`WarpProgram`]: a state machine advanced one
//! *warp instruction* at a time. Each `step` call may perform at most one
//! memory operation through the [`WarpCtx`] (plus an optional compute
//! burst); the context executes the operation functionally (real bytes
//! move) *and* computes its timing (coalescing, bank conflicts, texture
//! cache, DRAM queueing). This hand-rolled-coroutine structure is what lets
//! the per-SM scheduler interleave warps on memory stalls — the
//! multithreaded latency hiding of paper Fig. 19 — without coroutines or
//! threads.

use crate::attrib::{LaneAttr, SmAttrSink};
use crate::config::GpuConfig;
use crate::constant::{broadcast_degree, ConstId, ConstantBuffer};
use crate::global::{coalesce_halfwarp, GlobalMemory};
use crate::introspect::SmProbe;
use crate::shared::{conflict_passes, conflict_passes_profiled, SharedMemory};
use crate::stats::SmStats;
use crate::texture::{TexId, Texture2d};
use mem_sim::{Cache, Cycle, DramChannel};
use trace::StallReason;

/// Identity of a warp within the launch, handed to the program factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpGeometry {
    /// Block index within the grid.
    pub block_id: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Lanes per warp.
    pub warp_size: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Blocks in the grid.
    pub grid_blocks: u32,
}

impl WarpGeometry {
    /// Global thread id of `lane` in this warp.
    pub fn global_thread(&self, lane: u32) -> u64 {
        self.block_id as u64 * self.threads_per_block as u64
            + self.warp_in_block as u64 * self.warp_size as u64
            + lane as u64
    }

    /// Thread id of `lane` within the block.
    pub fn block_thread(&self, lane: u32) -> u32 {
        self.warp_in_block * self.warp_size + lane
    }
}

/// What a warp did in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More instructions to run.
    Continue,
    /// Reached a `__syncthreads()`; the warp parks until every warp of the
    /// block arrives.
    Barrier,
    /// The warp has exited the kernel.
    Finished,
}

/// A warp-synchronous kernel program.
///
/// Contract: each `step` performs **at most one** memory operation on the
/// context (checked in debug builds). Per-lane divergence is handled by the
/// program itself by passing `None` for inactive lanes.
pub trait WarpProgram {
    /// Advance by one warp instruction.
    fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome;
}

/// Per-step cost report handed back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCost {
    /// Cycles the SM issue port is occupied (base issue × serialization
    /// passes + declared compute).
    pub issue: u32,
    /// Cycle at which the warp may issue its next instruction (memory
    /// completion for loads; equals issue end when no memory op ran).
    pub ready_at: Cycle,
    /// Why the warp is waiting past its issue slot, when a long-latency
    /// memory source is responsible. `None` for compute-bound steps, hits,
    /// and conflict-free accesses — idle gaps ending on such a warp fall
    /// into the `no-ready-warp` residual bucket.
    pub stall: Option<StallReason>,
}

/// Execution context for one warp step: a view over the SM's memory system
/// plus the current cycle. Created by the scheduler per step.
pub struct WarpCtx<'a> {
    pub(crate) cfg: &'a GpuConfig,
    pub(crate) global: &'a mut GlobalMemory,
    pub(crate) shared: &'a mut SharedMemory,
    pub(crate) textures: &'a [Texture2d],
    pub(crate) constants: &'a [ConstantBuffer],
    pub(crate) tex_cache: &'a mut Cache,
    pub(crate) tex_l2: &'a mut Cache,
    pub(crate) const_cache: &'a mut Cache,
    pub(crate) dram: &'a mut DramChannel,
    pub(crate) stats: &'a mut SmStats,
    /// Armed-only introspection sink; `None` on the disarmed (timing
    /// baseline) path, where every probe is a single branch.
    pub(crate) probe: Option<&'a mut SmProbe>,
    /// Armed-only workload-attribution sink; same contract as `probe`.
    pub(crate) attr: Option<&'a mut SmAttrSink>,
    pub(crate) now: Cycle,
    pub(crate) issue: u32,
    pub(crate) ready_at: Cycle,
    pub(crate) mem_ops: u32,
    pub(crate) stall: Option<StallReason>,
}

impl<'a> WarpCtx<'a> {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the SM's memory system
    pub(crate) fn new(
        cfg: &'a GpuConfig,
        global: &'a mut GlobalMemory,
        shared: &'a mut SharedMemory,
        textures: &'a [Texture2d],
        constants: &'a [ConstantBuffer],
        tex_cache: &'a mut Cache,
        tex_l2: &'a mut Cache,
        const_cache: &'a mut Cache,
        dram: &'a mut DramChannel,
        stats: &'a mut SmStats,
        probe: Option<&'a mut SmProbe>,
        attr: Option<&'a mut SmAttrSink>,
        now: Cycle,
    ) -> Self {
        let issue = cfg.issue_cycles;
        WarpCtx {
            cfg,
            global,
            shared,
            textures,
            constants,
            tex_cache,
            tex_l2,
            const_cache,
            dram,
            stats,
            probe,
            attr,
            now,
            issue,
            ready_at: now + issue as Cycle,
            mem_ops: 0,
            stall: None,
        }
    }

    /// Finalize the step into its cost. The stall classification only
    /// survives when the warp actually waits past its issue slot — a hidden
    /// (issue-bound) memory access cannot end an idle gap for its reason.
    pub(crate) fn into_cost(self) -> StepCost {
        let issue_end = self.now + self.issue as Cycle;
        let stall = if self.ready_at > issue_end {
            self.stall
        } else {
            None
        };
        StepCost {
            issue: self.issue,
            ready_at: self.ready_at.max(issue_end),
            stall,
        }
    }

    fn note_mem_op(&mut self) {
        self.mem_ops += 1;
        debug_assert!(
            self.mem_ops <= 1,
            "a warp step may perform at most one memory operation"
        );
    }

    /// The device configuration (for warp size, bank count, …).
    pub fn config(&self) -> &GpuConfig {
        self.cfg
    }

    /// Declare `cycles` of pure arithmetic in this instruction (state
    /// bookkeeping, comparisons). Added to the issue occupancy.
    pub fn compute(&mut self, cycles: u32) {
        self.issue += cycles;
    }

    /// Tag this step with per-lane workload labels (for the AC kernels,
    /// the DFA state each lane is visiting). The scheduler charges the
    /// step's issue cycles — and any idle gap this warp later ends —
    /// across these labels; texture fetches performed *after* this call in
    /// the same step are counted per label. A single branch when
    /// attribution is disarmed; never feeds back into timing.
    pub fn attribute(&mut self, lanes: &[Option<LaneAttr>]) {
        if let Some(sink) = self.attr.as_deref_mut() {
            sink.set_lanes(lanes);
        }
    }

    /// Iterate half-warp ranges over `n` lanes.
    fn half_warps(&self, n: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
        let hw = self.cfg.half_warp() as usize;
        (0..n.div_ceil(hw)).map(move |i| i * hw..((i + 1) * hw).min(n))
    }

    /// Coalesced global loads of one byte per active lane.
    /// `addrs[lane] = None` for inactive lanes; `out[lane]` receives the
    /// byte for active lanes and is untouched otherwise.
    pub fn global_read_u8(&mut self, addrs: &[Option<u64>], out: &mut [u8]) {
        self.global_read(addrs, 1, |g, a, lane| out[lane] = g.read_u8(a));
    }

    /// Coalesced global loads of one 32-bit word per active lane (the
    /// paper's staging loop reads "four bytes (32-bit word) at one time").
    pub fn global_read_u32(&mut self, addrs: &[Option<u64>], out: &mut [u32]) {
        self.global_read(addrs, 4, |g, a, lane| out[lane] = g.read_u32(a));
    }

    fn global_read(
        &mut self,
        addrs: &[Option<u64>],
        width: u32,
        mut apply: impl FnMut(&GlobalMemory, u64, usize),
    ) {
        self.note_mem_op();
        let mut scratch: Vec<(u64, u32)> = Vec::with_capacity(self.cfg.half_warp() as usize);
        let mut ready = self.now;
        for hw in self.half_warps(addrs.len()) {
            scratch.clear();
            for lane in hw {
                if let Some(a) = addrs[lane] {
                    apply(self.global, a, lane);
                    scratch.push((a, width));
                }
            }
            if scratch.is_empty() {
                continue;
            }
            let txns = coalesce_halfwarp(self.cfg, &scratch);
            self.stats.record_global(scratch.len() as u64, &txns);
            // Address divergence replays the load instruction once per
            // extra transaction (GT200 LSU behaviour), occupying the
            // issue port like a shared-memory bank conflict does.
            self.issue += (txns.len() as u32 - 1) * self.cfg.issue_cycles;
            for &(_, bytes) in &txns {
                ready = ready.max(self.dram.issue(self.now, bytes));
            }
        }
        self.stall = Some(StallReason::GlobalLatency);
        self.ready_at = self.ready_at.max(ready);
    }

    /// Global stores of 32-bit words. Fire-and-forget (GPU store buffers):
    /// the warp does not stall, but the transactions consume DRAM
    /// bandwidth, so heavy result writing still shows up in the timing.
    pub fn global_write_u32(&mut self, writes: &[Option<(u64, u32)>]) {
        self.note_mem_op();
        let mut scratch: Vec<(u64, u32)> = Vec::with_capacity(self.cfg.half_warp() as usize);
        for hw in self.half_warps(writes.len()) {
            scratch.clear();
            for lane in hw {
                if let Some((a, v)) = writes[lane] {
                    self.global.write_u32(a, v);
                    scratch.push((a, 4));
                }
            }
            if scratch.is_empty() {
                continue;
            }
            let txns = coalesce_halfwarp(self.cfg, &scratch);
            self.stats.record_global(scratch.len() as u64, &txns);
            for &(_, bytes) in &txns {
                // Consumes channel time; completion not awaited.
                self.dram.issue(self.now, bytes);
            }
        }
    }

    /// Shared-memory byte loads, serialized by bank conflicts per
    /// half-warp.
    pub fn shared_read_u8(&mut self, addrs: &[Option<u64>], out: &mut [u8]) {
        self.note_mem_op();
        let mut extra_passes = 0u32;
        let mut scratch: Vec<u64> = Vec::with_capacity(self.cfg.half_warp() as usize);
        for hw in self.half_warps(addrs.len()) {
            scratch.clear();
            for lane in hw {
                if let Some(a) = addrs[lane] {
                    out[lane] = self.shared.read_u8(a);
                    scratch.push(a);
                }
            }
            if scratch.is_empty() {
                continue;
            }
            let p = match self.probe.as_deref_mut() {
                Some(probe) => conflict_passes_profiled(self.cfg, &scratch, &mut probe.banks),
                None => conflict_passes(self.cfg, &scratch),
            };
            self.stats.record_shared(p);
            // Half-warps pipeline; only passes beyond the first per
            // half-warp re-occupy the issue port.
            extra_passes += p - 1;
        }
        self.apply_shared_cost(extra_passes);
    }

    /// Shared-memory 32-bit stores (the staging writes of the paper's
    /// Figs. 10–11), serialized by bank conflicts per half-warp.
    pub fn shared_write_u32(&mut self, writes: &[Option<(u64, u32)>]) {
        self.note_mem_op();
        let mut extra_passes = 0u32;
        let mut scratch: Vec<u64> = Vec::with_capacity(self.cfg.half_warp() as usize);
        for hw in self.half_warps(writes.len()) {
            scratch.clear();
            for lane in hw {
                if let Some((a, v)) = writes[lane] {
                    self.shared.write_u32(a, v);
                    scratch.push(a);
                }
            }
            if scratch.is_empty() {
                continue;
            }
            let p = match self.probe.as_deref_mut() {
                Some(probe) => conflict_passes_profiled(self.cfg, &scratch, &mut probe.banks),
                None => conflict_passes(self.cfg, &scratch),
            };
            self.stats.record_shared(p);
            extra_passes += p - 1;
        }
        self.apply_shared_cost(extra_passes);
    }

    fn apply_shared_cost(&mut self, extra_passes: u32) {
        // The first pass of each half-warp is covered by the base issue
        // slot; each extra (conflict) pass re-occupies the port.
        self.issue += extra_passes * self.cfg.issue_cycles;
        if extra_passes > 0 {
            self.stall = Some(StallReason::SharedBank);
        }
        self.ready_at = self
            .ready_at
            .max(self.now + (self.issue + self.cfg.shared_latency) as Cycle);
    }

    /// Constant-memory word reads, one index per active lane.
    ///
    /// Broadcast-optimized (paper §III's constant cache): `d` distinct
    /// indices serialize into `d` passes through the constant port.
    /// Lines are cached per SM; misses fill from DRAM.
    pub fn const_read_u32(&mut self, buf: ConstId, indices: &[Option<u32>], out: &mut [u32]) {
        self.note_mem_op();
        let b = &self.constants[buf.0];
        let degree = broadcast_degree(indices);
        let mut reads = 0u64;
        let mut misses = 0u64;
        let line = self.const_cache.config().line_bytes;
        let mut ready = self.now + self.cfg.shared_latency as Cycle;
        for (lane, idx) in indices.iter().enumerate() {
            let Some(i) = *idx else { continue };
            reads += 1;
            out[lane] = b.read(i);
            // Constant space is per-buffer; offset buffers so they don't
            // alias each other in the cache.
            let addr = (buf.0 as u64) << 20 | (i as u64 * 4);
            if !self.const_cache.access(addr).is_hit() {
                misses += 1;
                ready = ready.max(self.dram.issue(self.now, line));
            }
        }
        // Each extra distinct address re-issues the instruction.
        self.issue += (degree - 1) * self.cfg.issue_cycles;
        self.stats.const_reads += reads;
        self.stats.const_replays += (degree - 1) as u64;
        self.stats.const_misses += misses;
        if misses > 0 {
            self.stall = Some(StallReason::ConstMiss);
        }
        self.ready_at = self.ready_at.max(ready);
    }

    /// Texture fetches, one `(row, col)` texel per active lane, through the
    /// SM's texture cache. Misses fill 64-byte lines from DRAM — the
    /// mechanism whose frequency grows with the paper's pattern count.
    pub fn tex_fetch(&mut self, tex: TexId, coords: &[Option<(u32, u32)>], out: &mut [u32]) {
        self.note_mem_op();
        let t = &self.textures[tex.0];
        let line = self.tex_cache.config().line_bytes;
        let mut ready = self.now + self.cfg.tex_hit_latency as Cycle;
        let mut misses_this_op = 0u32;
        let mut l2_misses_this_op = 0u32;
        let mut fetches = 0u64;
        for (lane, c) in coords.iter().enumerate() {
            let Some((row, col)) = *c else { continue };
            fetches += 1;
            out[lane] = t.fetch(row, col);
            let addr = t.tiled_addr(row, col);
            let l1_hit = self.tex_cache.access(addr).is_hit();
            let mut l2_hit = false;
            if !l1_hit {
                misses_this_op += 1;
                if self.tex_l2.access(addr).is_hit() {
                    // On-chip L2 hit: latency only, no DRAM channel time.
                    l2_hit = true;
                    ready = ready.max(self.now + self.cfg.tex_l2_latency as Cycle);
                } else {
                    l2_misses_this_op += 1;
                    ready = ready.max(self.dram.issue(self.now, line));
                }
            }
            // Armed-only observation; the cache access above is identical
            // either way.
            if let Some(sink) = self.attr.as_deref_mut() {
                sink.note_tex_fetch(lane, l1_hit);
            }
            if let Some(probe) = self.probe.as_deref_mut() {
                if let Some(slot) = probe
                    .row_fetches
                    .get_mut(tex.0)
                    .and_then(|rows| rows.get_mut(row as usize))
                {
                    *slot += 1;
                }
                if let Some(total) = probe.tex_fetches.get_mut(tex.0) {
                    *total += 1;
                    if l1_hit {
                        probe.tex_l1_hits[tex.0] += 1;
                    } else if l2_hit {
                        probe.tex_l2_hits[tex.0] += 1;
                    }
                }
            }
        }
        self.stats.tex_l2_misses += l2_misses_this_op as u64;
        // The texture pipeline's throughput limit: a warp's fetches stream
        // through at tex_lanes_per_cycle, occupying the SM's slot.
        let pipe = (fetches as f64 / self.cfg.tex_lanes_per_cycle).ceil() as u32;
        self.issue = self.issue.max(pipe);
        self.stats.record_tex(fetches, misses_this_op as u64);
        if misses_this_op > 0 {
            self.stall = Some(StallReason::TexMiss);
        }
        self.ready_at = self.ready_at.max(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::DramConfig;
    use std::sync::Arc;

    /// Build a context over scratch memories for direct unit testing.
    struct Rig {
        cfg: GpuConfig,
        global: GlobalMemory,
        shared: SharedMemory,
        textures: Vec<Texture2d>,
        constants: Vec<ConstantBuffer>,
        cache: Cache,
        l2: Cache,
        cc: Cache,
        dram: DramChannel,
        stats: SmStats,
    }

    impl Rig {
        fn new() -> Self {
            let cfg = GpuConfig::gtx285();
            Rig {
                cfg,
                global: GlobalMemory::from_bytes((0..=255u8).cycle().take(4096).collect()),
                shared: SharedMemory::new(4096, cfg.shared_banks),
                textures: vec![Texture2d::new(Arc::new((0..64u32 * 16).collect()), 64, 16)],
                constants: vec![ConstantBuffer::new(Arc::new((0..256u32).collect())).unwrap()],
                cache: Cache::new(cfg.tex_cache),
                l2: Cache::new(cfg.tex_l2),
                cc: Cache::new(cfg.const_cache),
                dram: DramChannel::new(DramConfig {
                    latency_cycles: 100,
                    bytes_per_cycle: 8.0,
                }),
                stats: SmStats::default(),
            }
        }

        fn ctx(&mut self, now: Cycle) -> WarpCtx<'_> {
            WarpCtx::new(
                &self.cfg,
                &mut self.global,
                &mut self.shared,
                &self.textures,
                &self.constants,
                &mut self.cache,
                &mut self.l2,
                &mut self.cc,
                &mut self.dram,
                &mut self.stats,
                None,
                None,
                now,
            )
        }

        fn attr_ctx<'a>(&'a mut self, sink: &'a mut SmAttrSink, now: Cycle) -> WarpCtx<'a> {
            WarpCtx::new(
                &self.cfg,
                &mut self.global,
                &mut self.shared,
                &self.textures,
                &self.constants,
                &mut self.cache,
                &mut self.l2,
                &mut self.cc,
                &mut self.dram,
                &mut self.stats,
                None,
                Some(sink),
                now,
            )
        }

        fn probed_ctx<'a>(&'a mut self, probe: &'a mut SmProbe, now: Cycle) -> WarpCtx<'a> {
            WarpCtx::new(
                &self.cfg,
                &mut self.global,
                &mut self.shared,
                &self.textures,
                &self.constants,
                &mut self.cache,
                &mut self.l2,
                &mut self.cc,
                &mut self.dram,
                &mut self.stats,
                Some(probe),
                None,
                now,
            )
        }
    }

    #[test]
    fn coalesced_read_is_one_transaction_per_halfwarp() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let addrs: Vec<Option<u64>> = (0..32).map(|l| Some(l * 4)).collect();
        let mut out = vec![0u32; 32];
        ctx.global_read_u32(&addrs, &mut out);
        let cost = ctx.into_cost();
        assert!(cost.ready_at > 100); // paid DRAM latency
        assert_eq!(rig.stats.global_transactions, 2); // 2 half-warps × 1 txn
                                                      // Functional correctness: little-endian of the 0..=255 ramp.
        assert_eq!(out[1], u32::from_le_bytes([4, 5, 6, 7]));
    }

    #[test]
    fn strided_read_explodes_transactions() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let addrs: Vec<Option<u64>> = (0..32).map(|l| Some(l * 128)).collect();
        let mut out = vec![0u8; 32];
        ctx.global_read_u8(&addrs, &mut out);
        let _ = ctx.into_cost();
        assert_eq!(rig.stats.global_transactions, 32);
    }

    #[test]
    fn inactive_lanes_are_skipped() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let mut addrs: Vec<Option<u64>> = vec![None; 32];
        addrs[5] = Some(80);
        let mut out = vec![0xAAu8; 32];
        ctx.global_read_u8(&addrs, &mut out);
        let _ = ctx.into_cost();
        assert_eq!(out[5], 80);
        assert_eq!(out[0], 0xAA);
        assert_eq!(rig.stats.global_transactions, 1);
    }

    #[test]
    fn conflict_free_shared_costs_one_pass() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let writes: Vec<Option<(u64, u32)>> = (0..32).map(|l| Some((l * 4, l as u32))).collect();
        ctx.shared_write_u32(&writes);
        let cost = ctx.into_cost();
        assert_eq!(cost.issue, rig.cfg.issue_cycles);
        assert_eq!(rig.shared.read_u32(8), 2);
        assert_eq!(rig.stats.shared_conflict_passes.max, 1);
    }

    #[test]
    fn bank_conflicts_inflate_issue() {
        let mut rig = Rig::new();
        let base_issue = rig.cfg.issue_cycles;
        let mut ctx = rig.ctx(0);
        // All 32 lanes hit bank 0 with distinct words: degree 16 per
        // half-warp.
        let addrs: Vec<Option<u64>> = (0..32).map(|l| Some(l * 16 * 4)).collect();
        let mut out = vec![0u8; 32];
        ctx.shared_read_u8(&addrs, &mut out);
        let cost = ctx.into_cost();
        // 15 extra passes per half-warp on top of the base slot.
        assert_eq!(cost.issue, base_issue + (15 + 15) * base_issue);
        assert_eq!(rig.stats.shared_conflict_passes.max, 16);
    }

    #[test]
    fn tex_fetch_miss_then_hit() {
        let mut rig = Rig::new();
        {
            let mut ctx = rig.ctx(0);
            let coords = vec![Some((0u32, 0u32)); 32];
            let mut out = vec![0u32; 32];
            ctx.tex_fetch(TexId(0), &coords, &mut out);
            let cost = ctx.into_cost();
            assert!(cost.ready_at >= 100); // one line miss
            assert_eq!(out[0], 0);
        }
        assert_eq!(rig.stats.tex_misses, 1); // broadcast: one line, one miss
        {
            let mut ctx = rig.ctx(1000);
            let coords = vec![Some((0u32, 5u32)); 32]; // same line
            let mut out = vec![0u32; 32];
            ctx.tex_fetch(TexId(0), &coords, &mut out);
            let cost = ctx.into_cost();
            // All hits: bounded by the texture pipeline (32 lanes at
            // tex_lanes_per_cycle) rather than DRAM.
            let pipe = (32.0 / rig.cfg.tex_lanes_per_cycle).ceil() as Cycle;
            let expect = pipe.max(rig.cfg.tex_hit_latency as Cycle);
            assert_eq!(cost.ready_at, 1000 + expect);
            assert_eq!(out[3], 5);
        }
        assert_eq!(rig.stats.tex_misses, 1);
        assert_eq!(rig.stats.tex_fetches, 64);
    }

    #[test]
    fn compute_adds_issue_occupancy() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        ctx.compute(7);
        let cost = ctx.into_cost();
        assert_eq!(cost.issue, rig.cfg.issue_cycles + 7);
        assert_eq!(cost.ready_at, (rig.cfg.issue_cycles + 7) as Cycle);
    }

    #[test]
    fn global_write_does_not_stall_warp() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let writes: Vec<Option<(u64, u32)>> = (0..32).map(|l| Some((l * 128, 9u32))).collect();
        ctx.global_write_u32(&writes);
        let cost = ctx.into_cost();
        // Ready immediately after issue despite 32 transactions.
        assert_eq!(cost.ready_at, rig.cfg.issue_cycles as Cycle);
        assert_eq!(rig.global.read_u32(512), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "at most one memory operation")]
    fn two_mem_ops_in_one_step_panics() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx(0);
        let mut out = vec![0u8; 32];
        ctx.global_read_u8(&[Some(0)], &mut out);
        ctx.global_read_u8(&[Some(4)], &mut out);
    }

    #[test]
    fn const_broadcast_vs_divergent() {
        let mut rig = Rig::new();
        let base_issue = rig.cfg.issue_cycles;
        // Broadcast: all 32 lanes read word 5 → one pass.
        {
            let mut ctx = rig.ctx(0);
            let idx = vec![Some(5u32); 32];
            let mut out = vec![0u32; 32];
            ctx.const_read_u32(ConstId(0), &idx, &mut out);
            let cost = ctx.into_cost();
            assert_eq!(out[0], 5);
            assert_eq!(cost.issue, base_issue);
        }
        // Divergent: 32 distinct words → 32 passes.
        {
            let mut ctx = rig.ctx(1000);
            let idx: Vec<Option<u32>> = (0..32).map(|l| Some(l as u32 * 8)).collect();
            let mut out = vec![0u32; 32];
            ctx.const_read_u32(ConstId(0), &idx, &mut out);
            let cost = ctx.into_cost();
            assert_eq!(cost.issue, base_issue + 31 * base_issue);
            assert_eq!(out[2], 16);
        }
        assert_eq!(rig.stats.const_replays, 31);
        assert_eq!(rig.stats.const_reads, 64);
    }

    #[test]
    fn stall_classification_per_op_kind() {
        let mut rig = Rig::new();
        // Global load pays DRAM latency → GlobalLatency.
        {
            let mut ctx = rig.ctx(0);
            let mut out = vec![0u8; 32];
            ctx.global_read_u8(&[Some(0)], &mut out);
            assert_eq!(ctx.into_cost().stall, Some(StallReason::GlobalLatency));
        }
        // Conflict-free shared access → no attributable stall.
        {
            let mut ctx = rig.ctx(0);
            let writes: Vec<Option<(u64, u32)>> = (0..32).map(|l| Some((l * 4, 0u32))).collect();
            ctx.shared_write_u32(&writes);
            assert_eq!(ctx.into_cost().stall, None);
        }
        // Bank-conflicted shared access → SharedBank.
        {
            let mut ctx = rig.ctx(0);
            let addrs: Vec<Option<u64>> = (0..32).map(|l| Some(l * 16 * 4)).collect();
            let mut out = vec![0u8; 32];
            ctx.shared_read_u8(&addrs, &mut out);
            assert_eq!(ctx.into_cost().stall, Some(StallReason::SharedBank));
        }
        // Cold texture fetch → TexMiss; warm repeat → no stall.
        {
            let mut ctx = rig.ctx(0);
            let coords = vec![Some((0u32, 0u32)); 32];
            let mut out = vec![0u32; 32];
            ctx.tex_fetch(TexId(0), &coords, &mut out);
            assert_eq!(ctx.into_cost().stall, Some(StallReason::TexMiss));
        }
        {
            let mut ctx = rig.ctx(10_000);
            let coords = vec![Some((0u32, 1u32)); 32];
            let mut out = vec![0u32; 32];
            ctx.tex_fetch(TexId(0), &coords, &mut out);
            assert_eq!(ctx.into_cost().stall, None);
        }
        // Cold constant read → ConstMiss; compute-only step → None.
        {
            let mut ctx = rig.ctx(20_000);
            let idx = vec![Some(0u32); 32];
            let mut out = vec![0u32; 32];
            ctx.const_read_u32(ConstId(0), &idx, &mut out);
            assert_eq!(ctx.into_cost().stall, Some(StallReason::ConstMiss));
        }
        {
            let mut ctx = rig.ctx(0);
            ctx.compute(3);
            assert_eq!(ctx.into_cost().stall, None);
        }
    }

    #[test]
    fn armed_probe_collects_banks_and_rows_without_timing_drift() {
        // Same op sequence through a plain and a probed context: identical
        // costs and stats, and the probe fills in the spatial story.
        let conflicted: Vec<Option<u64>> = (0..32).map(|l| Some(l * 16 * 4)).collect();
        let coords: Vec<Option<(u32, u32)>> = (0..32).map(|l| Some((l % 4, l % 8))).collect();

        let mut plain = Rig::new();
        let mut probed = Rig::new();
        let mut probe = SmProbe::new(&probed.cfg, &probed.textures);

        let mut out8 = vec![0u8; 32];
        let mut ctx = plain.ctx(0);
        ctx.shared_read_u8(&conflicted, &mut out8);
        let plain_cost = ctx.into_cost();
        let mut ctx = probed.probed_ctx(&mut probe, 0);
        ctx.shared_read_u8(&conflicted, &mut out8);
        assert_eq!(ctx.into_cost(), plain_cost);

        let mut out32 = vec![0u32; 32];
        let mut ctx = plain.ctx(500);
        ctx.tex_fetch(TexId(0), &coords, &mut out32);
        let plain_cost = ctx.into_cost();
        let mut ctx = probed.probed_ctx(&mut probe, 500);
        ctx.tex_fetch(TexId(0), &coords, &mut out32);
        assert_eq!(ctx.into_cost(), plain_cost);

        assert_eq!(plain.stats, probed.stats);
        // The conflicted read put 16 distinct words in bank 0 per half-warp.
        assert_eq!(probe.banks.bank_words[0], 32);
        assert_eq!(probe.banks.degree_counts[16], 2);
        // 32 fetches spread over rows 0..4 of texture 0, 8 per row.
        assert_eq!(probe.row_fetches[0][..4], [8, 8, 8, 8]);
    }

    #[test]
    fn armed_attribution_counts_labelled_tex_fetches_without_timing_drift() {
        use crate::attrib::AttributionConfig;
        let coords: Vec<Option<(u32, u32)>> = (0..32).map(|l| Some((l % 4, l % 8))).collect();
        let labels: Vec<Option<LaneAttr>> = (0..32).map(|l| Some(LaneAttr::state(l % 4))).collect();

        let mut plain = Rig::new();
        let mut attributed = Rig::new();
        let mut sink = SmAttrSink::new(&AttributionConfig::default(), attributed.cfg.warp_size);

        let mut out32 = vec![0u32; 32];
        let mut ctx = plain.ctx(0);
        ctx.tex_fetch(TexId(0), &coords, &mut out32);
        let plain_cost = ctx.into_cost();

        sink.begin_step();
        let mut ctx = attributed.attr_ctx(&mut sink, 0);
        ctx.attribute(&labels);
        ctx.tex_fetch(TexId(0), &coords, &mut out32);
        assert_eq!(ctx.into_cost(), plain_cost);
        assert_eq!(plain.stats, attributed.stats);

        // 8 fetches under each of the 4 labels; per-label misses sum to
        // the SM aggregate.
        assert_eq!(sink.tex_fetches, vec![8, 8, 8, 8]);
        assert_eq!(
            sink.tex_misses.iter().sum::<u64>(),
            attributed.stats.tex_misses
        );
    }

    #[test]
    fn geometry_thread_ids() {
        let g = WarpGeometry {
            block_id: 2,
            warp_in_block: 1,
            warp_size: 32,
            threads_per_block: 128,
            grid_blocks: 10,
        };
        assert_eq!(g.block_thread(3), 35);
        assert_eq!(g.global_thread(3), 2 * 128 + 35);
    }
}
