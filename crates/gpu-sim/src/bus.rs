//! Host-side PCIe bus arbitration for a multi-device fleet.
//!
//! One simulated GPU owns its PCIe link outright: [`crate::stream`]
//! charges each copy `latency + bytes / link_bandwidth` on the device's
//! single DMA engine and nothing else contends for the wire. A fleet of
//! N devices is different — every `h2d`/`d2h` crosses shared host-side
//! resources (the root-complex links, the host memory channels feeding
//! pinned staging buffers), and those do *not* scale with N. This module
//! models that shared segment as one FIFO resource with an aggregate
//! bandwidth: before a device-level copy is released, the host must
//! *acquire* the bus for `bytes / aggregate_bandwidth` seconds.
//!
//! Two deliberate asymmetries keep the single-device schedule exact:
//!
//! * the per-copy setup latency (link training, doorbells) is per-device
//!   hardware and is **not** charged to the shared bus;
//! * the aggregate bandwidth is at least one device's link bandwidth, so
//!   a lone device's bus occupancy always ends before its own DMA engine
//!   finishes the same copy — the arbiter never delays it.
//!
//! With several devices the occupancies serialize, which is exactly the
//! sublinear-scaling knee the fleet benchmarks measure.

use serde::{Deserialize, Serialize};

/// Shared host-side transfer segment for a device fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Aggregate bytes/second the shared segment sustains across all
    /// devices' concurrent copies.
    pub aggregate_bytes_per_sec: f64,
}

impl BusConfig {
    /// Shared-segment defaults for PCIe gen2 hosts: the host-memory
    /// channels feeding the pinned staging buffers top out around
    /// 16 GB/s, i.e. between two and three concurrent full-rate x16
    /// copies (6 GB/s effective each) regardless of how many devices
    /// are plugged in.
    pub fn gen2_host() -> Self {
        BusConfig {
            aggregate_bytes_per_sec: 16.0e9,
        }
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::gen2_host()
    }
}

/// Cumulative arbiter statistics for a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BusStats {
    /// Copies granted bus time.
    pub grants: u64,
    /// Grants that had to wait behind another device's transfer.
    pub contended: u64,
    /// Total seconds grants spent waiting for the bus.
    pub waited_seconds: f64,
    /// Total seconds the bus spent moving bytes.
    pub busy_seconds: f64,
    /// Total bytes moved.
    pub bytes: u64,
}

impl BusStats {
    /// Busy fraction of the bus over `makespan` seconds, in [0, 1].
    pub fn utilisation(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / makespan).min(1.0)
        }
    }
}

/// Deterministic FIFO arbiter over the shared transfer segment: grants
/// serialize in acquisition order, each occupying the bus for
/// `bytes / aggregate_bytes_per_sec`.
#[derive(Debug, Clone)]
pub struct PcieBusArbiter {
    cfg: BusConfig,
    free: f64,
    stats: BusStats,
}

impl PcieBusArbiter {
    /// An idle bus.
    pub fn new(cfg: BusConfig) -> Self {
        PcieBusArbiter {
            cfg,
            free: 0.0,
            stats: BusStats::default(),
        }
    }

    /// Acquire the bus for a `bytes`-sized copy that is otherwise ready
    /// at `ready` seconds. Returns the instant the device-level copy may
    /// be released: `ready` when the bus is idle, later when another
    /// device's transfer still occupies it.
    pub fn acquire(&mut self, ready: f64, bytes: u64) -> f64 {
        let granted = ready.max(self.free);
        let occupancy = if self.cfg.aggregate_bytes_per_sec > 0.0 {
            bytes as f64 / self.cfg.aggregate_bytes_per_sec
        } else {
            0.0
        };
        self.free = granted + occupancy;
        self.stats.grants += 1;
        if granted > ready {
            self.stats.contended += 1;
            self.stats.waited_seconds += granted - ready;
        }
        self.stats.busy_seconds += occupancy;
        self.stats.bytes += bytes;
        granted
    }

    /// When the bus next goes idle.
    pub fn free_at(&self) -> f64 {
        self.free
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_at_ready_time() {
        let mut bus = PcieBusArbiter::new(BusConfig {
            aggregate_bytes_per_sec: 1.0e9,
        });
        assert_eq!(bus.acquire(5.0, 1_000_000_000), 5.0);
        assert_eq!(bus.free_at(), 6.0);
        let s = bus.stats();
        assert_eq!(s.grants, 1);
        assert_eq!(s.contended, 0);
        assert_eq!(s.busy_seconds, 1.0);
    }

    #[test]
    fn concurrent_copies_serialize_and_count_contention() {
        let mut bus = PcieBusArbiter::new(BusConfig {
            aggregate_bytes_per_sec: 1.0e9,
        });
        assert_eq!(bus.acquire(0.0, 2_000_000_000), 0.0);
        // Second device ready mid-transfer: pushed to the bus-free edge.
        assert_eq!(bus.acquire(1.0, 1_000_000_000), 2.0);
        let s = bus.stats();
        assert_eq!(s.contended, 1);
        assert_eq!(s.waited_seconds, 1.0);
        assert_eq!(s.bytes, 3_000_000_000);
    }

    #[test]
    fn lone_device_is_never_delayed_when_aggregate_covers_its_link() {
        // Device link 6 GB/s, shared segment 16 GB/s: the bus occupancy
        // of any copy ends before the device's own DMA engine would, so
        // back-to-back copies from one device always find the bus idle.
        let mut bus = PcieBusArbiter::new(BusConfig::gen2_host());
        let bytes = 1_000_000u64;
        let device_copy_seconds = bytes as f64 / 6.0e9;
        let mut ready = 0.0;
        for _ in 0..16 {
            let granted = bus.acquire(ready, bytes);
            assert_eq!(granted, ready, "lone device delayed by its own bus");
            ready = granted + device_copy_seconds;
        }
        assert_eq!(bus.stats().contended, 0);
    }

    #[test]
    fn zero_bandwidth_degrades_to_a_pass_through() {
        let mut bus = PcieBusArbiter::new(BusConfig {
            aggregate_bytes_per_sec: 0.0,
        });
        assert_eq!(bus.acquire(3.0, 1 << 20), 3.0);
        assert_eq!(bus.acquire(3.0, 1 << 20), 3.0);
        assert_eq!(bus.stats().busy_seconds, 0.0);
    }
}
