//! Constant memory: the third cached read-only space of the paper's §III
//! ("data in constant memory and texture memory can be cached as
//! read-only data on chip in the constant cache and the texture cache
//! respectively").
//!
//! The constant cache differs from the texture cache in one crucial way:
//! it is **broadcast-optimized**. A warp reading one address costs a
//! single access; a warp reading `d` *distinct* addresses serializes into
//! `d` accesses (G80/GT200 behaviour). That asymmetry is exactly why the
//! paper stores the randomly-indexed STT in texture memory and not in
//! constant memory — the `ablation-constant` experiment in `repro`
//! measures what the wrong choice would have cost.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a constant-memory buffer bound to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstId(pub usize);

/// A read-only buffer of 32-bit words in constant memory.
///
/// GT200 exposes 64 KB of constant memory; the device enforces that
/// limit at bind time.
#[derive(Debug, Clone)]
pub struct ConstantBuffer {
    data: Arc<Vec<u32>>,
}

/// Constant-memory capacity of CUDA devices of this era.
pub const CONSTANT_MEMORY_BYTES: usize = 64 * 1024;

impl ConstantBuffer {
    /// Wrap host data (≤ 64 KB) as a constant buffer.
    pub fn new(data: Arc<Vec<u32>>) -> Result<Self, String> {
        if data.len() * 4 > CONSTANT_MEMORY_BYTES {
            return Err(format!(
                "constant buffer of {} bytes exceeds the {}-byte constant memory",
                data.len() * 4,
                CONSTANT_MEMORY_BYTES
            ));
        }
        Ok(ConstantBuffer { data })
    }

    /// Functional read of word `index`.
    #[inline]
    pub fn read(&self, index: u32) -> u32 {
        self.data[index as usize]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Serialization degree of one warp constant access: the number of
/// *distinct* word indices among the active lanes (1 = broadcast).
pub fn broadcast_degree(indices: &[Option<u32>]) -> u32 {
    let mut seen: Vec<u32> = Vec::with_capacity(8);
    for idx in indices.iter().flatten() {
        if !seen.contains(idx) {
            seen.push(*idx);
        }
    }
    seen.len().max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_read() {
        let b = ConstantBuffer::new(Arc::new(vec![10, 20, 30])).unwrap();
        assert_eq!(b.read(1), 20);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let too_big = Arc::new(vec![0u32; CONSTANT_MEMORY_BYTES / 4 + 1]);
        assert!(ConstantBuffer::new(too_big).is_err());
        let exactly = Arc::new(vec![0u32; CONSTANT_MEMORY_BYTES / 4]);
        assert!(ConstantBuffer::new(exactly).is_ok());
    }

    #[test]
    fn broadcast_is_degree_one() {
        let idx = vec![Some(7u32); 32];
        assert_eq!(broadcast_degree(&idx), 1);
    }

    #[test]
    fn divergent_reads_serialize() {
        let idx: Vec<Option<u32>> = (0..32).map(|l| Some(l as u32)).collect();
        assert_eq!(broadcast_degree(&idx), 32);
        let idx: Vec<Option<u32>> = (0..32).map(|l| Some((l % 4) as u32)).collect();
        assert_eq!(broadcast_degree(&idx), 4);
    }

    #[test]
    fn inactive_lanes_ignored_and_empty_is_one() {
        let mut idx = vec![None; 32];
        assert_eq!(broadcast_degree(&idx), 1);
        idx[3] = Some(9);
        idx[17] = Some(9);
        assert_eq!(broadcast_degree(&idx), 1);
    }
}
