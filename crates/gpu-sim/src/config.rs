//! Device configuration: geometry, latencies and clocks of the simulated
//! GPU, with a preset matching the paper's Nvidia GeForce GTX 285.

use crate::error::GpuConfigError;
use mem_sim::{CacheConfig, DramConfig};
use serde::{Deserialize, Serialize};

/// Full description of a simulated device.
///
/// The defaults follow the GT200 generation (the GTX 285 of the paper):
/// warp-wide SIMT issue over 8 scalar cores per SM, 16 KB of shared memory
/// split into 16 banks evaluated per half-warp, per-half-warp global-memory
/// coalescing into 32/64/128-byte transactions, and a small per-SM
/// read-only texture cache in front of device DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Streaming multiprocessors. GTX 285: 30.
    pub num_sms: u32,
    /// Scalar cores ("thread processors") per SM. GTX 285: 8, giving the
    /// device's 240 cores.
    pub cores_per_sm: u32,
    /// Threads per warp. GT200: 32.
    pub warp_size: u32,
    /// Shared memory per SM in bytes. GTX 285: 16 KB.
    pub shared_mem_bytes: u32,
    /// Shared-memory banks. GT200: 16, one 32-bit word wide each,
    /// evaluated per half-warp.
    pub shared_banks: u32,
    /// Max resident warps per SM (occupancy ceiling). GT200: 32.
    pub max_warps_per_sm: u32,
    /// Max resident blocks per SM. GT200: 8.
    pub max_blocks_per_sm: u32,
    /// Cycles to issue one warp instruction: `warp_size / cores_per_sm`
    /// on real GT200 (4); kept explicit so ablations can vary it.
    pub issue_cycles: u32,
    /// Latency of a shared-memory access (register-speed on GT200).
    pub shared_latency: u32,
    /// Texture-cache hit latency in cycles.
    pub tex_hit_latency: u32,
    /// Texture-pipeline throughput in fetches per cycle per SM. GT200
    /// TPCs have 8 texture address units shared by 3 SMs ≈ 2.7/SM/cycle;
    /// a full 32-lane fetch therefore occupies the pipeline ~12 cycles,
    /// which (not raw issue) bounds texture-heavy kernels like AC.
    pub tex_lanes_per_cycle: f64,
    /// Texture cache geometry (per SM).
    pub tex_cache: CacheConfig,
    /// Second-level texture cache. On real GT200 boards this lives at the
    /// memory partitions (~256 KB total) and is shared by all SMs; since
    /// the SMs of a data-parallel kernel share one hot set, we model it as
    /// a per-SM cache of the full shared capacity.
    pub tex_l2: CacheConfig,
    /// Latency of an L1-miss/L2-hit texture fetch in cycles (on-chip, no
    /// DRAM channel time).
    pub tex_l2_latency: u32,
    /// Per-SM constant cache (broadcast-optimized; see `constant`).
    pub const_cache: CacheConfig,
    /// Device DRAM (global + texture backing store) seen by one SM; the
    /// per-SM channel gets `1/num_sms` of the board bandwidth so that
    /// simulating SMs independently still respects the aggregate limit.
    pub dram: DramConfig,
    /// Coalescing segment size in bytes (GT200: 128; requests within one
    /// segment merge into a single transaction).
    pub coalesce_segment: u32,
    /// Core clock in Hz, used to convert cycles to seconds. GTX 285:
    /// 1.476 GHz shader clock.
    pub clock_hz: f64,
    /// Device (G-DRAM) capacity in bytes; allocations beyond it fail the
    /// way a real `cudaMalloc` does. GTX 285: 1 GB.
    pub device_mem_bytes: u64,
}

impl GpuConfig {
    /// The paper's device: GeForce GTX 285 (GT200b), 240 cores, 16 KB
    /// shared memory per SM, 159 GB/s board bandwidth, 1 GB device memory.
    ///
    /// Board bandwidth 159 GB/s ÷ 1.476 GHz ≈ 107.7 B/cycle, split across
    /// 30 SMs ≈ 3.59 B/cycle per SM channel.
    pub fn gtx285() -> Self {
        let num_sms = 30u32;
        let board_bytes_per_cycle = 159.0e9 / 1.476e9;
        GpuConfig {
            num_sms,
            cores_per_sm: 8,
            warp_size: 32,
            shared_mem_bytes: 16 * 1024,
            shared_banks: 16,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 8,
            issue_cycles: 4,
            shared_latency: 2,
            tex_hit_latency: 10,
            tex_lanes_per_cycle: 2.7,
            tex_cache: CacheConfig {
                // ~8 KB of texture cache per SM (GT200 has 12–24 KB per
                // 3-SM TPC; 8 KB/SM is the standard modelling figure).
                size_bytes: 8 * 1024,
                line_bytes: 32,
                associativity: 8,
            },
            // The board's ~256 KB texture L2 is shared by all 30 SMs. In
            // a data-parallel AC kernel every SM walks the *same* hot STT
            // rows, so a line fetched by one SM is a hit for the others;
            // a per-SM cache of the full shared capacity models that
            // shared hot set (per-SM *private* 256 KB would be wrong for
            // disjoint working sets, but SM working sets here coincide).
            tex_l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 32,
                associativity: 16,
            },
            tex_l2_latency: 180,
            const_cache: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                associativity: 4,
            },
            dram: DramConfig {
                latency_cycles: 500,
                bytes_per_cycle: board_bytes_per_cycle / num_sms as f64,
            },
            coalesce_segment: 128,
            clock_hz: 1.476e9,
            device_mem_bytes: 1 << 30,
        }
    }

    /// A Fermi-generation device (Tesla C2050-class), the newer
    /// architecture the paper's §III describes ("in the high-end Nvidia
    /// GPU such as the Tesla based on Fermi architecture, there is a
    /// level-1 data cache per thread block of which the size is 48KB"):
    /// 14 SMs × 32 cores, 48 KB shared memory in 32 banks, single-cycle
    /// warp issue over two schedulers, 144 GB/s of GDDR5.
    ///
    /// Used by the `ablation-fermi` experiment to ask how the paper's
    /// kernels would have fared one hardware generation later.
    pub fn fermi_c2050() -> Self {
        let num_sms = 14u32;
        let board_bytes_per_cycle = 144.0e9 / 1.15e9;
        GpuConfig {
            num_sms,
            cores_per_sm: 32,
            warp_size: 32,
            shared_mem_bytes: 48 * 1024,
            shared_banks: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            issue_cycles: 1,
            shared_latency: 2,
            tex_hit_latency: 12,
            tex_lanes_per_cycle: 4.0,
            tex_cache: CacheConfig {
                size_bytes: 12 * 1024,
                line_bytes: 32,
                associativity: 12,
            },
            tex_l2: CacheConfig {
                // Fermi's 768 KB unified L2, shared-hot-set modelled as in
                // [`GpuConfig::gtx285`]. 24 ways keeps the set count a
                // power of two at this capacity.
                size_bytes: 768 * 1024,
                line_bytes: 32,
                associativity: 24,
            },
            tex_l2_latency: 120,
            const_cache: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                associativity: 4,
            },
            dram: DramConfig {
                latency_cycles: 400,
                bytes_per_cycle: board_bytes_per_cycle / num_sms as f64,
            },
            coalesce_segment: 128,
            clock_hz: 1.15e9,
            device_mem_bytes: 3 << 30,
        }
    }

    /// A deliberately tiny device for unit tests: 1 SM, 2 cores, 4-lane
    /// warps, 4 banks — small enough to hand-compute expected cycles.
    pub fn tiny_test() -> Self {
        GpuConfig {
            num_sms: 1,
            cores_per_sm: 2,
            warp_size: 4,
            shared_mem_bytes: 1024,
            shared_banks: 4,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 2,
            issue_cycles: 2,
            shared_latency: 2,
            tex_hit_latency: 4,
            tex_lanes_per_cycle: 2.0,
            tex_cache: CacheConfig {
                size_bytes: 512,
                line_bytes: 32,
                associativity: 2,
            },
            tex_l2: CacheConfig {
                size_bytes: 2048,
                line_bytes: 32,
                associativity: 4,
            },
            tex_l2_latency: 20,
            const_cache: CacheConfig {
                size_bytes: 256,
                line_bytes: 32,
                associativity: 2,
            },
            dram: DramConfig {
                latency_cycles: 50,
                bytes_per_cycle: 4.0,
            },
            coalesce_segment: 64,
            clock_hz: 1.0e9,
            device_mem_bytes: 1 << 20,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), GpuConfigError> {
        if self.num_sms == 0 || self.cores_per_sm == 0 {
            return Err(GpuConfigError::ZeroSmsOrCores);
        }
        if self.warp_size == 0 || !self.warp_size.is_multiple_of(2) {
            return Err(GpuConfigError::BadWarpSize(self.warp_size));
        }
        if self.shared_banks == 0 {
            return Err(GpuConfigError::ZeroBanks);
        }
        if self.max_warps_per_sm == 0 || self.max_blocks_per_sm == 0 {
            return Err(GpuConfigError::ZeroResidencyLimits);
        }
        if self.coalesce_segment == 0 || !self.coalesce_segment.is_power_of_two() {
            return Err(GpuConfigError::BadCoalesceSegment(self.coalesce_segment));
        }
        if self.clock_hz <= 0.0 {
            return Err(GpuConfigError::NonPositiveClock);
        }
        if self.warp_size > 32 || self.shared_banks > 32 {
            return Err(GpuConfigError::ModelLimits);
        }
        if self.device_mem_bytes == 0 {
            return Err(GpuConfigError::ZeroDeviceMem);
        }
        if self.tex_lanes_per_cycle <= 0.0 {
            return Err(GpuConfigError::NonPositiveTexRate);
        }
        self.tex_cache
            .validate()
            .map_err(|e| GpuConfigError::Cache {
                which: "tex_cache",
                message: e,
            })?;
        self.const_cache
            .validate()
            .map_err(|e| GpuConfigError::Cache {
                which: "const_cache",
                message: e,
            })?;
        self.tex_l2.validate().map_err(|e| GpuConfigError::Cache {
            which: "tex_l2",
            message: e,
        })?;
        if self.tex_l2.line_bytes != self.tex_cache.line_bytes {
            return Err(GpuConfigError::MismatchedTexLines);
        }
        self.dram.validate().map_err(GpuConfigError::Dram)?;
        Ok(())
    }

    /// Half-warp width used for coalescing and bank-conflict evaluation.
    pub fn half_warp(&self) -> u32 {
        self.warp_size / 2
    }

    /// Convert a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Throughput in Gbit/s for `bytes` processed in `cycles`.
    pub fn gbps(&self, bytes: usize, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / self.cycles_to_seconds(cycles) / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx285_matches_paper_hardware() {
        let c = GpuConfig::gtx285();
        c.validate().unwrap();
        assert_eq!(c.num_sms * c.cores_per_sm, 240); // "240 thread processors"
        assert_eq!(c.shared_mem_bytes, 16 * 1024); // "16KB shared memory"
        assert_eq!(c.shared_banks, 16);
        assert_eq!(c.half_warp(), 16);
        assert!((c.clock_hz - 1.476e9).abs() < 1e6);
    }

    #[test]
    fn tiny_config_is_valid() {
        GpuConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn fermi_matches_c2050_hardware() {
        let c = GpuConfig::fermi_c2050();
        c.validate().unwrap();
        assert_eq!(c.num_sms * c.cores_per_sm, 448);
        assert_eq!(c.shared_mem_bytes, 48 * 1024); // the paper's "48KB"
        assert_eq!(c.shared_banks, 32);
        assert_eq!(c.issue_cycles, 1);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = GpuConfig::tiny_test();
        c.warp_size = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.shared_banks = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.coalesce_segment = 48;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.clock_hz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn unit_conversions() {
        let c = GpuConfig::tiny_test(); // 1 GHz
        assert_eq!(c.cycles_to_seconds(1_000_000_000), 1.0);
        // 1 GB in 1 second = 8 Gbps.
        let gbps = c.gbps(1_000_000_000, 1_000_000_000);
        assert!((gbps - 8.0).abs() < 1e-9);
        assert_eq!(c.gbps(100, 0), 0.0);
    }
}
