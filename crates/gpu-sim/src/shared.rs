//! Per-block shared memory with the GT200 bank-conflict model.
//!
//! Shared memory is divided into `shared_banks` banks of 32-bit words;
//! successive words live in successive banks (paper §IV.B.3). Accesses are
//! evaluated per half-warp: if k active lanes touch k *distinct word
//! addresses* in the same bank, the access serializes into k passes. All
//! lanes reading the *same* word is a broadcast and costs one pass — the
//! GT200 special case.

use crate::config::GpuConfig;
use mem_sim::BankHistogram;

/// A block's shared memory: functional byte store sized at launch.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    data: Vec<u8>,
    banks: u32,
}

impl SharedMemory {
    /// Allocate `size` zeroed bytes with the device's bank count.
    pub fn new(size: u32, banks: u32) -> Self {
        SharedMemory {
            data: vec![0; size as usize],
            banks,
        }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bank holding byte address `addr` (bank of its containing word).
    #[inline]
    pub fn bank_of(&self, addr: u64) -> u32 {
        ((addr / 4) % self.banks as u64) as u32
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.data[addr as usize]
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.data[addr as usize] = value;
    }

    /// Read a little-endian 32-bit word.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("u32 read in bounds"))
    }

    /// Write a little-endian 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Zero the contents (block retirement reuse).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// Serialization passes needed by one half-warp's shared access.
///
/// `addrs` are the byte addresses of the *active* lanes. Returns ≥ 1 for a
/// non-empty access: the maximum, over banks, of the number of distinct
/// words addressed in that bank (conflict degree). Identical words count
/// once (broadcast).
pub fn conflict_passes(cfg: &GpuConfig, addrs: &[u64]) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    let counts = bank_word_counts(cfg, addrs);
    counts.iter().copied().max().unwrap_or(0).max(1)
}

/// As [`conflict_passes`], additionally recording the per-bank distinct-word
/// distribution into `hist`. Called only on the armed-introspection path:
/// the return value is byte-for-byte the same as [`conflict_passes`], so
/// timing cannot drift, and the extra scan never runs disarmed.
pub fn conflict_passes_profiled(cfg: &GpuConfig, addrs: &[u64], hist: &mut BankHistogram) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    let counts = bank_word_counts(cfg, addrs);
    let passes = counts.iter().copied().max().unwrap_or(0).max(1);
    hist.record(&counts[..cfg.shared_banks as usize], passes);
    passes
}

/// Distinct words addressed per bank by one half-warp (indices past
/// `shared_banks` stay zero).
fn bank_word_counts(cfg: &GpuConfig, addrs: &[u64]) -> [u32; 32] {
    let banks = cfg.shared_banks as usize;
    // Half-warps are ≤16 lanes: fixed scratch arrays, no allocation.
    debug_assert!(addrs.len() <= cfg.half_warp() as usize);
    let mut per_bank_words: [[u64; 16]; 32] = [[u64::MAX; 16]; 32];
    let mut per_bank_count = [0u32; 32];
    for &a in addrs {
        let word = a / 4;
        let bank = (word % banks as u64) as usize;
        let seen = &mut per_bank_words[bank];
        let count = &mut per_bank_count[bank];
        if !seen[..*count as usize].contains(&word) {
            seen[*count as usize] = word;
            *count += 1;
        }
    }
    per_bank_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> GpuConfig {
        GpuConfig::gtx285() // 16 banks
    }

    #[test]
    fn consecutive_words_are_conflict_free() {
        // Lane l touches word l → 16 lanes, 16 distinct banks → 1 pass.
        let addrs: Vec<u64> = (0..16).map(|l| l * 4).collect();
        assert_eq!(conflict_passes(&cfg(), &addrs), 1);
    }

    #[test]
    fn stride_16_words_fully_serializes() {
        // Lane l touches word l*16 → all in bank 0 → 16 passes. This is
        // exactly the naive chunk layout the paper's Fig. 23 baseline
        // suffers from (chunk size = 64 bytes = 16 words).
        let addrs: Vec<u64> = (0..16).map(|l| l * 16 * 4).collect();
        assert_eq!(conflict_passes(&cfg(), &addrs), 16);
    }

    #[test]
    fn broadcast_is_one_pass() {
        let addrs = vec![100; 16];
        assert_eq!(conflict_passes(&cfg(), &addrs), 1);
    }

    #[test]
    fn same_word_different_bytes_is_broadcast() {
        // Bytes 0..3 live in word 0: one distinct word → broadcast.
        let addrs = vec![0, 1, 2, 3];
        assert_eq!(conflict_passes(&cfg(), &addrs), 1);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes split between word 0 and word 16 (both bank 0) → 2 passes.
        let addrs = vec![0, 16 * 4, 4, 8]; // banks 0,0,1,2
        assert_eq!(conflict_passes(&cfg(), &addrs), 2);
    }

    #[test]
    fn empty_access_is_zero_passes() {
        assert_eq!(conflict_passes(&cfg(), &[]), 0);
    }

    #[test]
    fn diagonal_mapping_is_conflict_free_for_any_column() {
        // The paper's store scheme (Fig. 11): thread c's word j lives at
        // word index j*16 + (c + j) % 16. For any fixed j, the 16 lanes
        // must hit 16 distinct banks.
        for j in 0..64u64 {
            let addrs: Vec<u64> = (0..16u64).map(|c| (j * 16 + (c + j) % 16) * 4).collect();
            assert_eq!(conflict_passes(&cfg(), &addrs), 1, "column {j}");
        }
    }

    #[test]
    fn functional_store_and_load() {
        let mut s = SharedMemory::new(64, 16);
        s.write_u32(8, 0xCAFEBABE);
        assert_eq!(s.read_u32(8), 0xCAFEBABE);
        s.write_u8(0, 42);
        assert_eq!(s.read_u8(0), 42);
        assert_eq!(s.bank_of(8), 2);
        assert_eq!(s.bank_of(16 * 4), 0);
        s.clear();
        assert_eq!(s.read_u32(8), 0);
        assert_eq!(s.len(), 64);
        assert!(!s.is_empty());
    }

    #[test]
    fn profiled_passes_fill_histogram() {
        let mut hist = BankHistogram::new(16);
        // Lane l touches word l*16 → all in bank 0 → 16 passes.
        let addrs: Vec<u64> = (0..16).map(|l| l * 16 * 4).collect();
        assert_eq!(conflict_passes_profiled(&cfg(), &addrs, &mut hist), 16);
        assert_eq!(hist.bank_words[0], 16);
        assert_eq!(hist.bank_words[1..].iter().sum::<u64>(), 0);
        assert_eq!(hist.degree_counts[16], 1);
        assert_eq!(hist.conflicted_ops(), 1);
        // Empty access records nothing.
        assert_eq!(conflict_passes_profiled(&cfg(), &[], &mut hist), 0);
        assert_eq!(hist.ops(), 1);
    }

    proptest! {
        /// Passes are bounded by [1, active lanes] and by the number of
        /// distinct words.
        #[test]
        fn passes_bounds(addrs in proptest::collection::vec(0u64..4096, 1..16)) {
            let p = conflict_passes(&cfg(), &addrs);
            prop_assert!(p >= 1);
            prop_assert!(p as usize <= addrs.len());
            let mut words: Vec<u64> = addrs.iter().map(|a| a / 4).collect();
            words.sort_unstable();
            words.dedup();
            prop_assert!(p as usize <= words.len());
        }

        /// The profiled variant returns exactly what the plain one does —
        /// introspection can never perturb serialization.
        #[test]
        fn profiled_matches_plain(addrs in proptest::collection::vec(0u64..4096, 0..16)) {
            let mut hist = BankHistogram::new(16);
            prop_assert_eq!(
                conflict_passes_profiled(&cfg(), &addrs, &mut hist),
                conflict_passes(&cfg(), &addrs)
            );
        }
    }
}
