//! Global (device) memory: the functional byte store plus the GT200
//! per-half-warp coalescing analyzer.
//!
//! The paper (§IV.B.3): "Multiple global memory loads whose addresses fall
//! within 128-bytes range are combined into one request to be sent to the
//! global memory." The analyzer below implements the GT200 rule set:
//! active lane addresses of a half-warp are grouped by 128-byte segment;
//! each group becomes a single transaction whose size is the group's span
//! rounded up to 32, 64 or 128 bytes.

use crate::config::GpuConfig;

/// The device's linear global memory. Purely functional — timing is
/// computed by the scheduler from the transaction list the analyzer
/// produces.
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    data: Vec<u8>,
}

impl GlobalMemory {
    /// Allocate `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        GlobalMemory {
            data: vec![0; size],
        }
    }

    /// Allocate and initialize from host data (the `cudaMemcpy` of the
    /// paper's phase 2 setup; its time is excluded from measurements just
    /// as the paper excludes its copies).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        GlobalMemory { data }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.data[addr as usize]
    }

    /// Read a little-endian 32-bit word.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("u32 read in bounds"))
    }

    /// Write a little-endian 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Borrow the raw bytes (host-side result readback).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// One coalesced DRAM transaction: `(segment base address, size in bytes)`.
pub type Transaction = (u64, u32);

/// Coalesce the active lanes of one half-warp.
///
/// `accesses` holds `(address, width)` pairs for the active lanes
/// (inactive lanes are simply omitted). Returns one transaction per
/// distinct `coalesce_segment`-sized segment, sized to the 32/64/128-byte
/// granule covering the group's span — the GT200 memory controller's
/// behaviour that rewards the paper's cooperative staging loop and
/// punishes the global-only kernel's strided reads.
pub fn coalesce_halfwarp(cfg: &GpuConfig, accesses: &[(u64, u32)]) -> Vec<Transaction> {
    let seg = cfg.coalesce_segment as u64;
    // Half-warps are ≤16 lanes; a sort-free O(n²) merge on a fixed-size
    // scratch buffer beats allocating a hash map in this very hot path.
    let mut groups: Vec<(u64, u64, u64)> = Vec::with_capacity(4); // (seg_base, lo, hi)
    for &(addr, width) in accesses {
        let base = addr / seg * seg;
        let lo = addr;
        let hi = addr + width as u64;
        match groups.iter_mut().find(|g| g.0 == base) {
            Some(g) => {
                g.1 = g.1.min(lo);
                g.2 = g.2.max(hi);
            }
            None => groups.push((base, lo, hi)),
        }
    }
    groups
        .into_iter()
        .map(|(base, lo, hi)| {
            let span = hi - lo;
            // Round the span up to the smallest GT200 granule that covers
            // it: 32, 64, or the full segment (128).
            let size = if span <= 32 {
                32
            } else if span <= 64 {
                64
            } else {
                cfg.coalesce_segment
            };
            (base, size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::gtx285() // 128-byte segments
    }

    #[test]
    fn contiguous_words_fuse_into_one_transaction() {
        // 16 lanes × 4 bytes contiguous = 64 bytes in one segment — the
        // paper's Fig. 9 staging pattern.
        let accesses: Vec<(u64, u32)> = (0..16).map(|l| (l * 4, 4)).collect();
        let txns = coalesce_halfwarp(&cfg(), &accesses);
        assert_eq!(txns, vec![(0, 64)]);
    }

    #[test]
    fn strided_bytes_explode_into_many_transactions() {
        // 16 lanes reading 1 byte each, 1 KB apart (the global-only
        // kernel's per-thread chunk walk): 16 separate 32-byte requests.
        let accesses: Vec<(u64, u32)> = (0..16).map(|l| (l * 1024, 1)).collect();
        let txns = coalesce_halfwarp(&cfg(), &accesses);
        assert_eq!(txns.len(), 16);
        assert!(txns.iter().all(|&(_, s)| s == 32));
    }

    #[test]
    fn span_rounds_to_granules() {
        // Two lanes 40 bytes apart within one segment → 64-byte granule.
        let txns = coalesce_halfwarp(&cfg(), &[(0, 4), (40, 4)]);
        assert_eq!(txns, vec![(0, 64)]);
        // Span > 64 → full 128-byte segment.
        let txns = coalesce_halfwarp(&cfg(), &[(0, 4), (100, 4)]);
        assert_eq!(txns, vec![(0, 128)]);
    }

    #[test]
    fn segment_straddling_pair_costs_two() {
        // Addresses in different 128-byte segments never merge even if
        // adjacent.
        let txns = coalesce_halfwarp(&cfg(), &[(124, 4), (128, 4)]);
        assert_eq!(txns.len(), 2);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let txns = coalesce_halfwarp(&cfg(), &[(64, 4), (64, 4), (64, 4)]);
        assert_eq!(txns, vec![(0, 32)]);
    }

    #[test]
    fn empty_halfwarp_no_transactions() {
        assert!(coalesce_halfwarp(&cfg(), &[]).is_empty());
    }

    proptest::proptest! {
        /// Coalescing invariants: one transaction per distinct segment,
        /// never more transactions than accesses, every granule legal,
        /// and each access covered by a transaction in its segment.
        #[test]
        fn coalesce_invariants(
            accesses in proptest::collection::vec((0u64..1u64 << 20, proptest::sample::select(vec![1u32, 4])), 1..16)
        ) {
            let cfg = cfg();
            let txns = coalesce_halfwarp(&cfg, &accesses);
            proptest::prop_assert!(txns.len() <= accesses.len());
            let mut segs: Vec<u64> = accesses.iter().map(|&(a, _)| a / 128).collect();
            segs.sort_unstable();
            segs.dedup();
            proptest::prop_assert_eq!(txns.len(), segs.len());
            for &(base, size) in &txns {
                proptest::prop_assert_eq!(base % 128, 0);
                proptest::prop_assert!(matches!(size, 32 | 64 | 128));
            }
            for &(a, w) in &accesses {
                let seg = a / 128 * 128;
                let t = txns.iter().find(|&&(b, _)| b == seg).expect("segment served");
                // The transaction's granule must reach the access (spans
                // are measured from the segment's low accessed byte, so
                // coverage is relative to the group's span).
                let lo = accesses.iter().filter(|&&(x, _)| x / 128 == a / 128).map(|&(x, _)| x).min().unwrap();
                proptest::prop_assert!(a + w as u64 - lo <= t.1 as u64);
            }
        }
    }

    #[test]
    fn functional_reads_and_writes() {
        let mut g = GlobalMemory::new(64);
        g.write_u32(8, 0xDEADBEEF);
        assert_eq!(g.read_u32(8), 0xDEADBEEF);
        assert_eq!(g.read_u8(8), 0xEF); // little endian
        assert_eq!(g.len(), 64);
        assert!(!g.is_empty());
        let g2 = GlobalMemory::from_bytes(vec![7, 8]);
        assert_eq!(g2.read_u8(1), 8);
    }
}
