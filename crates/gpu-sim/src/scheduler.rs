//! The per-SM warp scheduler.
//!
//! Each SM owns an instruction issue port, a texture cache and a slice of
//! the board's DRAM bandwidth. Resident warps are issued round-robin: a
//! warp whose last instruction is still waiting on memory is skipped and
//! other warps run in the meantime — the multithreaded latency hiding of
//! paper Fig. 19(a). When *every* resident warp is waiting on memory the
//! SM sits idle (`idle_cycles`), which is exactly the saturation regime of
//! Fig. 19(b): more texture misses → more parked warps → more empty issue
//! slots.
//!
//! Blocks are resident up to the occupancy limits (block count, warp
//! count, shared-memory capacity); when a block's warps all finish, the
//! next pending block is activated in its place, reusing the hardware the
//! way a real GT200 does.

use crate::attrib::{AttributionState, LaneAttr, SmAttrSink};
use crate::config::GpuConfig;
use crate::constant::ConstantBuffer;
use crate::device::LaunchConfig;
use crate::global::GlobalMemory;
use crate::introspect::{IntrospectState, SmIntrospection, SmProbe};
use crate::kernel::{StepOutcome, WarpCtx, WarpGeometry, WarpProgram};
use crate::shared::SharedMemory;
use crate::stats::SmStats;
use crate::texture::Texture2d;
use mem_sim::{Cache, Cycle, DramChannel};
use trace::{ArgValue, StallReason, TraceBuffer, PID_DEVICE};

/// Trace track offset separating each SM's DRAM-channel events from its
/// scheduler events (same pid, distinct tid lane).
const DRAM_TID_BASE: u32 = 1000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpRun {
    Ready,
    AtBarrier,
    Finished,
}

struct WarpSlot<P> {
    program: Option<P>,
    geom: WarpGeometry,
    ready_at: Cycle,
    run: WarpRun,
    /// Index into the SM's active-block table.
    block_slot: usize,
    /// Why the warp is waiting until `ready_at` (None = issue-bound). An
    /// idle gap ending at this warp's wake-up is charged to this reason.
    wait: Option<StallReason>,
    /// Armed-attribution only: the labels of this warp's last step; an
    /// idle gap ending at this warp's wake-up is charged to these labels.
    attr_last: Vec<LaneAttr>,
}

struct ActiveBlock {
    shared: SharedMemory,
    alive_warps: u32,
    at_barrier: u32,
}

/// Simulate one SM executing `block_ids` of the launch. Returns the SM's
/// statistics; finished warp programs are appended to `retired` for
/// host-side result extraction. When `trace` is armed, scheduler and DRAM
/// events are recorded against SM `sm_id`'s tracks — recording never feeds
/// back into timing, so traced and untraced runs produce identical stats.
#[allow(clippy::too_many_arguments)] // the SM's full memory system is threaded through explicitly
pub(crate) fn run_sm<P, F>(
    cfg: &GpuConfig,
    global: &mut GlobalMemory,
    textures: &[Texture2d],
    constants: &[ConstantBuffer],
    lc: &LaunchConfig,
    block_ids: &[u32],
    factory: &mut F,
    retired: &mut Vec<(WarpGeometry, P)>,
    sm_id: u32,
    mut trace: Option<&mut TraceBuffer>,
    introspect: Option<&mut IntrospectState>,
    attribution: Option<&mut AttributionState>,
) -> SmStats
where
    P: WarpProgram,
    F: FnMut(WarpGeometry) -> P,
{
    let mut stats = SmStats::default();
    if block_ids.is_empty() {
        return stats;
    }
    let warps_per_block = lc.threads_per_block / cfg.warp_size;
    let resident_blocks = lc.resident_blocks_per_sm(cfg).min(block_ids.len() as u32) as usize;

    let mut tex_cache = Cache::new(cfg.tex_cache);
    let mut tex_l2 = Cache::new(cfg.tex_l2);
    let mut const_cache = Cache::new(cfg.const_cache);
    let mut dram = DramChannel::new(cfg.dram);
    if let Some(tb) = trace.as_deref_mut() {
        if tb.config().dram {
            dram.enable_log(tb.config().max_events);
        }
    }
    // Armed introspection: turn on the spatial collectors. None of them
    // feeds back into timing (pure counters/logs), so the disarmed path
    // stays the bit-identical baseline.
    let mut probe = introspect.as_ref().map(|st| {
        tex_cache.enable_set_profile();
        tex_l2.enable_set_profile();
        dram.enable_busy_tracking(st.cfg.max_busy_intervals);
        SmProbe::new(cfg, textures)
    });
    // Armed attribution: the per-SM ledger the kernel labels feed. Like
    // the probe, it observes without feeding back into timing.
    let mut attr_sink = attribution
        .as_ref()
        .map(|st| SmAttrSink::new(&st.cfg, cfg.warp_size));

    let mut pending = block_ids.iter().copied();
    let mut blocks: Vec<ActiveBlock> = Vec::with_capacity(resident_blocks);
    let mut slots: Vec<WarpSlot<P>> = Vec::new();
    // Indices of live (not finished) slots, scanned round-robin.
    let mut live: Vec<usize> = Vec::new();

    let activate = |block_id: u32,
                    block_slot: usize,
                    slots: &mut Vec<WarpSlot<P>>,
                    live: &mut Vec<usize>,
                    factory: &mut F,
                    now: Cycle,
                    trace: Option<&mut TraceBuffer>|
     -> ActiveBlock {
        for w in 0..warps_per_block {
            let geom = WarpGeometry {
                block_id,
                warp_in_block: w,
                warp_size: cfg.warp_size,
                threads_per_block: lc.threads_per_block,
                grid_blocks: lc.grid_blocks,
            };
            slots.push(WarpSlot {
                program: Some(factory(geom)),
                geom,
                ready_at: now,
                run: WarpRun::Ready,
                block_slot,
                wait: None,
                attr_last: Vec::new(),
            });
            live.push(slots.len() - 1);
        }
        if let Some(tb) = trace {
            if tb.config().scheduler {
                tb.instant(
                    "block-activate",
                    "sched",
                    PID_DEVICE,
                    sm_id,
                    now,
                    vec![("block".to_string(), ArgValue::U64(block_id as u64))],
                );
            }
        }
        ActiveBlock {
            shared: SharedMemory::new(lc.shared_bytes_per_block, cfg.shared_banks),
            alive_warps: warps_per_block,
            at_barrier: 0,
        }
    };

    for slot in 0..resident_blocks {
        let id = pending
            .next()
            .expect("resident_blocks bounded by block count");
        let ab = activate(
            id,
            slot,
            &mut slots,
            &mut live,
            factory,
            0,
            trace.as_deref_mut(),
        );
        blocks.push(ab);
    }

    let mut now: Cycle = 0;
    let mut issue_free: Cycle = 0;
    let mut rr: usize = 0; // round-robin cursor into `live`

    while !live.is_empty() {
        now = now.max(issue_free);
        // Pick the next ready warp at `now`, round-robin from `rr`.
        let mut chosen: Option<usize> = None; // index into `live`
        for k in 0..live.len() {
            let li = (rr + k) % live.len();
            let s = &slots[live[li]];
            if s.run == WarpRun::Ready && s.ready_at <= now {
                chosen = Some(li);
                break;
            }
        }
        let Some(li) = chosen else {
            // Nothing issueable: jump to the earliest wake-up. The idle gap
            // is charged to the wait reason of the warp that ends it (the
            // first live warp with the minimal wake-up cycle — deterministic
            // because `live` scan order is deterministic).
            let mut next: Option<(Cycle, usize)> = None;
            for &i in &live {
                if slots[i].run == WarpRun::Ready {
                    let t = slots[i].ready_at;
                    if next.is_none_or(|(best, _)| t < best) {
                        next = Some((t, i));
                    }
                }
            }
            match next {
                Some((t, ender)) => {
                    debug_assert!(t > now);
                    let gap = t - now;
                    let reason = slots[ender].wait.unwrap_or(StallReason::NoReadyWarp);
                    stats.idle_cycles += gap;
                    stats.stalls.add(reason, gap);
                    if let Some(sink) = attr_sink.as_mut() {
                        // The gap is the fault of whatever the ender's last
                        // step was working on.
                        sink.charge_labels(&slots[ender].attr_last, gap);
                    }
                    if let Some(tb) = trace.as_deref_mut() {
                        if tb.config().scheduler {
                            tb.stall(sm_id, now, gap, reason);
                        }
                    }
                    now = t;
                    continue;
                }
                None => {
                    // All live warps are parked at a barrier that will
                    // never release — a kernel bug (mismatched barriers).
                    panic!(
                        "SM deadlock: all live warps are at a barrier; \
                         kernel has mismatched __syncthreads()"
                    );
                }
            }
        };

        let slot_idx = live[li];
        rr = (li + 1) % live.len();
        let block_slot = slots[slot_idx].block_slot;

        // Step the warp.
        let (outcome, cost) = {
            if let Some(sink) = attr_sink.as_mut() {
                sink.begin_step();
            }
            let block = &mut blocks[block_slot];
            let mut ctx = WarpCtx::new(
                cfg,
                global,
                &mut block.shared,
                textures,
                constants,
                &mut tex_cache,
                &mut tex_l2,
                &mut const_cache,
                &mut dram,
                &mut stats,
                probe.as_mut(),
                attr_sink.as_mut(),
                now,
            );
            let program = slots[slot_idx]
                .program
                .as_mut()
                .expect("live warp has a program");
            let outcome = program.step(&mut ctx);
            (outcome, ctx.into_cost())
        };
        stats.instructions += 1;
        if let Some(sink) = attr_sink.as_mut() {
            sink.charge_step(cost.issue as u64);
            let last = &mut slots[slot_idx].attr_last;
            last.clear();
            last.extend(sink.step_labels());
        }
        issue_free = now + cost.issue as Cycle;
        slots[slot_idx].ready_at = cost.ready_at.max(issue_free);
        slots[slot_idx].wait = cost.stall;
        if let Some(tb) = trace.as_deref_mut() {
            if tb.config().issues {
                let geom = slots[slot_idx].geom;
                tb.instant(
                    "issue",
                    "sched",
                    PID_DEVICE,
                    sm_id,
                    now,
                    vec![
                        ("block".to_string(), ArgValue::U64(geom.block_id as u64)),
                        ("warp".to_string(), ArgValue::U64(geom.warp_in_block as u64)),
                    ],
                );
            }
        }

        match outcome {
            StepOutcome::Continue => {}
            StepOutcome::Barrier => {
                slots[slot_idx].run = WarpRun::AtBarrier;
                blocks[block_slot].at_barrier += 1;
                maybe_release_barrier(
                    &mut blocks[block_slot],
                    &mut slots,
                    &live,
                    block_slot,
                    &mut stats,
                );
            }
            StepOutcome::Finished => {
                slots[slot_idx].run = WarpRun::Finished;
                let geom = slots[slot_idx].geom;
                if let Some(p) = slots[slot_idx].program.take() {
                    retired.push((geom, p));
                }
                // Swap-remove from the live list.
                live.swap_remove(li);
                if li < rr {
                    rr = rr.saturating_sub(1);
                }
                if !live.is_empty() {
                    rr %= live.len();
                } else {
                    rr = 0;
                }
                let block = &mut blocks[block_slot];
                block.alive_warps -= 1;
                if block.alive_warps == 0 {
                    // Retire the block; activate the next pending one in
                    // this residency slot.
                    if let Some(next_id) = pending.next() {
                        let ab = activate(
                            next_id,
                            block_slot,
                            &mut slots,
                            &mut live,
                            factory,
                            now,
                            trace.as_deref_mut(),
                        );
                        blocks[block_slot] = ab;
                    }
                } else {
                    // A warp finishing can complete a pending barrier.
                    maybe_release_barrier(block, &mut slots, &live, block_slot, &mut stats);
                }
            }
        }
    }

    stats.cycles = now.max(issue_free).max(
        // Account for in-flight memory of the final instructions.
        slots.iter().map(|s| s.ready_at).max().unwrap_or(0),
    );
    if let Some(tb) = trace {
        if tb.config().scheduler {
            tb.span(
                "sm",
                "sched",
                PID_DEVICE,
                sm_id,
                0,
                stats.cycles,
                vec![
                    ("blocks".to_string(), ArgValue::U64(block_ids.len() as u64)),
                    (
                        "instructions".to_string(),
                        ArgValue::U64(stats.instructions),
                    ),
                    ("idle_cycles".to_string(), ArgValue::U64(stats.idle_cycles)),
                ],
            );
        }
        if tb.config().dram {
            for txn in dram.take_log() {
                tb.span(
                    "dram-txn",
                    "mem",
                    PID_DEVICE,
                    DRAM_TID_BASE + sm_id,
                    txn.start,
                    txn.done - txn.start,
                    vec![
                        ("bytes".to_string(), ArgValue::U64(txn.bytes as u64)),
                        (
                            "queue_cycles".to_string(),
                            ArgValue::U64(txn.start - txn.issued),
                        ),
                    ],
                );
            }
        }
    }
    if let Some(st) = attribution {
        let sink = attr_sink.take().expect("sink exists whenever armed");
        // Every advance of the clock was either an issue slot (charged at
        // step time) or an idle gap (charged at jump time); what remains
        // is the in-flight memory drain past the final issue.
        let busy = now.max(issue_free);
        st.result
            .per_sm
            .push(sink.finish(sm_id, stats.cycles - busy, stats.cycles));
    }
    if let Some(st) = introspect {
        let probe = probe.take().expect("probe exists whenever armed");
        st.result.per_sm.push(SmIntrospection {
            sm: sm_id,
            tex_l1: tex_cache.stats(),
            tex_l1_sets: tex_cache.set_profile().unwrap_or_default().to_vec(),
            tex_l2: tex_l2.stats(),
            tex_l2_sets: tex_l2.set_profile().unwrap_or_default().to_vec(),
            tex_resident_lines: tex_cache.resident_lines(),
            banks: probe.banks,
            dram_busy: dram.take_busy_intervals(),
            row_fetches: probe.row_fetches,
            tex_fetches: probe.tex_fetches,
            tex_l1_hits: probe.tex_l1_hits,
            tex_l2_hits: probe.tex_l2_hits,
        });
    }
    stats
}

fn maybe_release_barrier<P>(
    block: &mut ActiveBlock,
    slots: &mut [WarpSlot<P>],
    live: &[usize],
    block_slot: usize,
    stats: &mut SmStats,
) {
    if block.alive_warps > 0 && block.at_barrier == block.alive_warps {
        // Release: the barrier completes when its last participant
        // arrives; each warp resumes no earlier than its own memory
        // readiness.
        let release_at = live
            .iter()
            .filter(|&&i| slots[i].block_slot == block_slot && slots[i].run == WarpRun::AtBarrier)
            .map(|&i| slots[i].ready_at)
            .max()
            .unwrap_or(0);
        for &i in live {
            if slots[i].block_slot == block_slot && slots[i].run == WarpRun::AtBarrier {
                slots[i].run = WarpRun::Ready;
                if release_at > slots[i].ready_at {
                    // The barrier, not this warp's own memory, is what it
                    // resumes behind.
                    slots[i].wait = Some(StallReason::Barrier);
                }
                slots[i].ready_at = slots[i].ready_at.max(release_at);
            }
        }
        block.at_barrier = 0;
        stats.barriers += 1;
    }
}
