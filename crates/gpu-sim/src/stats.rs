//! Launch statistics: everything the experiment harness needs to explain
//! *why* a kernel was fast or slow, aggregated from per-SM counters.

use crate::global::Transaction;
use mem_sim::{Counter, Cycle};
use serde::{Deserialize, Serialize};

/// Counters accumulated by one SM during a launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Individual global-memory lane requests.
    pub global_requests: u64,
    /// Coalesced transactions actually sent to DRAM.
    pub global_transactions: u64,
    /// Bytes moved over the DRAM channel for global traffic.
    pub global_bytes: u64,
    /// Texture texel fetches.
    pub tex_fetches: u64,
    /// Texture L1 cache line misses.
    pub tex_misses: u64,
    /// Texture fetches that also missed the L2 and went to DRAM.
    pub tex_l2_misses: u64,
    /// Constant-memory lane reads.
    pub const_reads: u64,
    /// Extra serialization passes caused by divergent constant reads
    /// (degree − 1 summed over warp accesses).
    pub const_replays: u64,
    /// Constant-cache line misses.
    pub const_misses: u64,
    /// Per-half-warp shared access serialization passes (1 = conflict
    /// free).
    pub shared_conflict_passes: Counter,
    /// Half-warp shared accesses that had ≥2 passes.
    pub shared_conflicts: u64,
    /// Barrier waits completed.
    pub barriers: u64,
    /// Cycles this SM spent with no warp ready to issue (stalled on
    /// memory) — the "saturation" signal of paper Fig. 19(b).
    pub idle_cycles: u64,
    /// Total cycles this SM ran.
    pub cycles: Cycle,
}

impl SmStats {
    pub(crate) fn record_global(&mut self, requests: u64, txns: &[Transaction]) {
        self.global_requests += requests;
        self.global_transactions += txns.len() as u64;
        self.global_bytes += txns.iter().map(|&(_, b)| b as u64).sum::<u64>();
    }

    pub(crate) fn record_shared(&mut self, passes: u32) {
        self.shared_conflict_passes.record(passes as u64);
        if passes > 1 {
            self.shared_conflicts += 1;
        }
    }

    pub(crate) fn record_tex(&mut self, fetches: u64, misses: u64) {
        self.tex_fetches += fetches;
        self.tex_misses += misses;
    }

    /// Merge another SM's counters (for device-level aggregation).
    pub fn merge(&mut self, other: &SmStats) {
        self.instructions += other.instructions;
        self.global_requests += other.global_requests;
        self.global_transactions += other.global_transactions;
        self.global_bytes += other.global_bytes;
        self.tex_fetches += other.tex_fetches;
        self.tex_misses += other.tex_misses;
        self.tex_l2_misses += other.tex_l2_misses;
        self.const_reads += other.const_reads;
        self.const_replays += other.const_replays;
        self.const_misses += other.const_misses;
        self.shared_conflict_passes.merge(&other.shared_conflict_passes);
        self.shared_conflicts += other.shared_conflicts;
        self.barriers += other.barriers;
        self.idle_cycles += other.idle_cycles;
        self.cycles = self.cycles.max(other.cycles);
    }

    /// Texture cache hit rate in [0, 1].
    pub fn tex_hit_rate(&self) -> f64 {
        if self.tex_fetches == 0 {
            1.0
        } else {
            1.0 - self.tex_misses as f64 / self.tex_fetches as f64
        }
    }

    /// Mean coalescing efficiency: lane requests served per transaction
    /// (16 = perfectly coalesced half-warps, 1 = fully scattered).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.global_transactions == 0 {
            1.0
        } else {
            self.global_requests as f64 / self.global_transactions as f64
        }
    }
}

/// Result of a whole launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Wall cycles of the launch: the slowest SM.
    pub cycles: Cycle,
    /// Per-SM completion cycles (load-balance diagnostics).
    pub per_sm_cycles: Vec<Cycle>,
    /// Aggregated counters across SMs.
    pub totals: SmStats,
    /// Blocks executed.
    pub blocks: u32,
    /// Warps executed.
    pub warps: u32,
}

impl LaunchStats {
    /// Seconds at `clock_hz`.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_max_cycles_and_sums_counts() {
        let mut a = SmStats { instructions: 5, cycles: 100, ..Default::default() };
        let b = SmStats { instructions: 7, cycles: 50, tex_fetches: 10, tex_misses: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.tex_hit_rate(), 0.5);
    }

    #[test]
    fn ratios_on_empty_stats() {
        let s = SmStats::default();
        assert_eq!(s.tex_hit_rate(), 1.0);
        assert_eq!(s.coalescing_ratio(), 1.0);
    }

    #[test]
    fn coalescing_ratio_reflects_requests_per_txn() {
        let mut s = SmStats::default();
        s.record_global(16, &[(0, 64)]);
        assert_eq!(s.coalescing_ratio(), 16.0);
        assert_eq!(s.global_bytes, 64);
    }

    #[test]
    fn launch_seconds() {
        let ls = LaunchStats { cycles: 2_000_000, ..Default::default() };
        assert!((ls.seconds(2.0e6) - 1.0).abs() < 1e-12);
    }
}
