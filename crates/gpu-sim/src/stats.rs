//! Launch statistics: everything the experiment harness needs to explain
//! *why* a kernel was fast or slow, aggregated from per-SM counters.

use crate::global::Transaction;
use mem_sim::{Counter, Cycle};
use serde::{Deserialize, Serialize};
use trace::{MetricsSnapshot, SmActivity, StallBreakdown};

/// Counters accumulated by one SM during a launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Individual global-memory lane requests.
    pub global_requests: u64,
    /// Coalesced transactions actually sent to DRAM.
    pub global_transactions: u64,
    /// Bytes moved over the DRAM channel for global traffic.
    pub global_bytes: u64,
    /// Texture texel fetches.
    pub tex_fetches: u64,
    /// Texture L1 cache line misses.
    pub tex_misses: u64,
    /// Texture fetches that also missed the L2 and went to DRAM.
    pub tex_l2_misses: u64,
    /// Constant-memory lane reads.
    pub const_reads: u64,
    /// Extra serialization passes caused by divergent constant reads
    /// (degree − 1 summed over warp accesses).
    pub const_replays: u64,
    /// Constant-cache line misses.
    pub const_misses: u64,
    /// Per-half-warp shared access serialization passes (1 = conflict
    /// free).
    pub shared_conflict_passes: Counter,
    /// Half-warp shared accesses that had ≥2 passes.
    pub shared_conflicts: u64,
    /// Barrier waits completed.
    pub barriers: u64,
    /// Cycles this SM spent with no warp ready to issue (stalled on
    /// memory) — the "saturation" signal of paper Fig. 19(b).
    pub idle_cycles: u64,
    /// Attribution of `idle_cycles` by the reason the gap-ending warp was
    /// parked; invariant (pinned by tests): `stalls.total() == idle_cycles`.
    #[serde(default)]
    pub stalls: StallBreakdown,
    /// Total cycles this SM ran.
    pub cycles: Cycle,
}

impl SmStats {
    pub(crate) fn record_global(&mut self, requests: u64, txns: &[Transaction]) {
        self.global_requests += requests;
        self.global_transactions += txns.len() as u64;
        self.global_bytes += txns.iter().map(|&(_, b)| b as u64).sum::<u64>();
    }

    pub(crate) fn record_shared(&mut self, passes: u32) {
        self.shared_conflict_passes.record(passes as u64);
        if passes > 1 {
            self.shared_conflicts += 1;
        }
    }

    pub(crate) fn record_tex(&mut self, fetches: u64, misses: u64) {
        self.tex_fetches += fetches;
        self.tex_misses += misses;
    }

    /// Merge another SM's counters (for device-level aggregation).
    pub fn merge(&mut self, other: &SmStats) {
        self.instructions += other.instructions;
        self.global_requests += other.global_requests;
        self.global_transactions += other.global_transactions;
        self.global_bytes += other.global_bytes;
        self.tex_fetches += other.tex_fetches;
        self.tex_misses += other.tex_misses;
        self.tex_l2_misses += other.tex_l2_misses;
        self.const_reads += other.const_reads;
        self.const_replays += other.const_replays;
        self.const_misses += other.const_misses;
        self.shared_conflict_passes
            .merge(&other.shared_conflict_passes);
        self.shared_conflicts += other.shared_conflicts;
        self.barriers += other.barriers;
        self.idle_cycles += other.idle_cycles;
        self.stalls.merge(&other.stalls);
        self.cycles = self.cycles.max(other.cycles);
    }

    /// Texture cache hit rate in [0, 1].
    pub fn tex_hit_rate(&self) -> f64 {
        if self.tex_fetches == 0 {
            1.0
        } else {
            1.0 - self.tex_misses as f64 / self.tex_fetches as f64
        }
    }

    /// Mean coalescing efficiency: lane requests served per transaction
    /// (16 = perfectly coalesced half-warps, 1 = fully scattered).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.global_transactions == 0 {
            1.0
        } else {
            self.global_requests as f64 / self.global_transactions as f64
        }
    }
}

/// Result of a whole launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Wall cycles of the launch: the slowest SM.
    pub cycles: Cycle,
    /// Per-SM completion cycles (load-balance diagnostics).
    pub per_sm_cycles: Vec<Cycle>,
    /// Full per-SM counters (stall attribution, idle cycles, traffic).
    #[serde(default)]
    pub per_sm: Vec<SmStats>,
    /// Aggregated counters across SMs.
    pub totals: SmStats,
    /// Blocks executed.
    pub blocks: u32,
    /// Warps executed.
    pub warps: u32,
    /// Device-memory high-water mark at launch time: the largest aligned
    /// footprint the device's allocator has ever held resident. Zero in
    /// reports that predate the allocator.
    #[serde(default)]
    pub device_mem_high_water: u64,
}

/// Per-SM completion-cycle spread: how evenly the launch's blocks loaded
/// the SMs. `max` is the launch's critical path; a large `max/mean` means
/// some SMs finished early and idled while the stragglers ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadImbalance {
    /// Slowest SM's completion cycle (= the launch time).
    pub max: Cycle,
    /// Fastest SM's completion cycle.
    pub min: Cycle,
    /// Mean completion cycle across SMs.
    pub mean: f64,
}

impl LoadImbalance {
    /// `max / mean` — 1.0 is a perfectly balanced launch.
    pub fn ratio(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

impl LaunchStats {
    /// Seconds at `clock_hz`.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }

    /// Input-consumption throughput in Gbit/s — the paper's headline unit
    /// (e.g. Fig. 7's ~2 Gbps for the global-memory kernel).
    pub fn throughput_gbps(&self, clock_hz: f64, input_bytes: u64) -> f64 {
        let secs = self.seconds(clock_hz);
        if secs == 0.0 {
            0.0
        } else {
            input_bytes as f64 * 8.0 / secs / 1e9
        }
    }

    /// Per-SM completion-cycle spread.
    pub fn load_imbalance(&self) -> LoadImbalance {
        if self.per_sm_cycles.is_empty() {
            return LoadImbalance::default();
        }
        let max = self.per_sm_cycles.iter().copied().max().unwrap_or(0);
        let min = self.per_sm_cycles.iter().copied().min().unwrap_or(0);
        let mean =
            self.per_sm_cycles.iter().sum::<Cycle>() as f64 / self.per_sm_cycles.len() as f64;
        LoadImbalance { max, min, mean }
    }

    /// Per-SM activity rows for the trace crate's stall-summary renderer.
    pub fn sm_activity(&self) -> Vec<SmActivity> {
        self.per_sm
            .iter()
            .enumerate()
            .map(|(i, s)| SmActivity {
                sm: i as u32,
                cycles: s.cycles,
                idle_cycles: s.idle_cycles,
                stalls: s.stalls,
            })
            .collect()
    }

    /// The human-readable per-SM timeline + stall breakdown (the Fig. 19
    /// latency-hiding narrative).
    pub fn stall_summary(&self) -> String {
        trace::render_stall_summary(self.cycles, &self.sm_activity())
    }

    /// Flatten the launch into a metrics snapshot (JSON / Prometheus via
    /// [`MetricsSnapshot`]). `input_bytes` feeds the throughput gauge; pass
    /// 0 when no meaningful input size exists.
    pub fn metrics(&self, clock_hz: f64, input_bytes: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push(
            "acsim_launch_cycles",
            "wall cycles of the launch (slowest SM)",
            self.cycles,
        );
        snap.push(
            "acsim_launch_seconds",
            "launch time at the device clock",
            self.seconds(clock_hz),
        );
        if input_bytes > 0 {
            snap.push(
                "acsim_input_bytes",
                "input bytes consumed by the launch",
                input_bytes,
            );
            snap.push(
                "acsim_throughput_gbps",
                "input-consumption throughput in Gbit/s",
                self.throughput_gbps(clock_hz, input_bytes),
            );
        }
        if self.device_mem_high_water > 0 {
            snap.push(
                "acsim_device_mem_high_water",
                "largest device-memory footprint ever resident (bytes)",
                self.device_mem_high_water,
            );
        }
        snap.push("acsim_blocks", "blocks executed", self.blocks as u64);
        snap.push("acsim_warps", "warps executed", self.warps as u64);
        snap.push(
            "acsim_instructions",
            "warp instructions issued",
            self.totals.instructions,
        );
        snap.push(
            "acsim_idle_cycles",
            "SM-cycles with no warp ready",
            self.totals.idle_cycles,
        );
        snap.push(
            "acsim_tex_hit_rate",
            "texture L1 hit rate in [0,1]",
            self.totals.tex_hit_rate(),
        );
        snap.push(
            "acsim_coalescing_ratio",
            "global lane requests per DRAM transaction",
            self.totals.coalescing_ratio(),
        );
        snap.push(
            "acsim_global_bytes",
            "bytes moved for global traffic",
            self.totals.global_bytes,
        );
        snap.push(
            "acsim_shared_conflicts",
            "half-warp shared accesses with bank conflicts",
            self.totals.shared_conflicts,
        );
        snap.push(
            "acsim_barriers",
            "barrier waits completed",
            self.totals.barriers,
        );
        let imb = self.load_imbalance();
        snap.push(
            "acsim_sm_cycles_max",
            "slowest SM completion cycle",
            imb.max,
        );
        snap.push(
            "acsim_sm_cycles_min",
            "fastest SM completion cycle",
            imb.min,
        );
        snap.push("acsim_sm_cycles_mean", "mean SM completion cycle", imb.mean);
        snap.push(
            "acsim_load_imbalance",
            "max/mean SM completion ratio",
            imb.ratio(),
        );
        for (reason, cycles) in self.totals.stalls.entries() {
            snap.push_labelled(
                "acsim_stall_cycles",
                "idle cycles attributed to each stall reason",
                vec![("reason".to_string(), reason.label().to_string())],
                cycles,
            );
        }
        for (i, s) in self.per_sm.iter().enumerate() {
            snap.push_labelled(
                "acsim_sm_cycles",
                "per-SM completion cycle",
                vec![("sm".to_string(), i.to_string())],
                s.cycles,
            );
            snap.push_labelled(
                "acsim_sm_idle_cycles",
                "per-SM idle cycles",
                vec![("sm".to_string(), i.to_string())],
                s.idle_cycles,
            );
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_max_cycles_and_sums_counts() {
        let mut a = SmStats {
            instructions: 5,
            cycles: 100,
            ..Default::default()
        };
        let b = SmStats {
            instructions: 7,
            cycles: 50,
            tex_fetches: 10,
            tex_misses: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.tex_hit_rate(), 0.5);
    }

    #[test]
    fn ratios_on_empty_stats() {
        let s = SmStats::default();
        assert_eq!(s.tex_hit_rate(), 1.0);
        assert_eq!(s.coalescing_ratio(), 1.0);
    }

    #[test]
    fn coalescing_ratio_reflects_requests_per_txn() {
        let mut s = SmStats::default();
        s.record_global(16, &[(0, 64)]);
        assert_eq!(s.coalescing_ratio(), 16.0);
        assert_eq!(s.global_bytes, 64);
    }

    #[test]
    fn launch_seconds() {
        let ls = LaunchStats {
            cycles: 2_000_000,
            ..Default::default()
        };
        assert!((ls.seconds(2.0e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_gbps_matches_hand_computation() {
        // 1 GB of input in 1 second is 8 Gbps.
        let ls = LaunchStats {
            cycles: 1_000_000_000,
            ..Default::default()
        };
        let gbps = ls.throughput_gbps(1.0e9, 1_000_000_000);
        assert!((gbps - 8.0).abs() < 1e-12, "{gbps}");
        // Empty launch yields zero rather than dividing by zero.
        assert_eq!(
            LaunchStats::default().throughput_gbps(1.0e9, 1_000_000_000),
            0.0
        );
    }

    #[test]
    fn load_imbalance_spread() {
        let ls = LaunchStats {
            cycles: 400,
            per_sm_cycles: vec![100, 200, 300, 400],
            ..Default::default()
        };
        let imb = ls.load_imbalance();
        assert_eq!(imb.max, 400);
        assert_eq!(imb.min, 100);
        assert!((imb.mean - 250.0).abs() < 1e-12);
        assert!((imb.ratio() - 1.6).abs() < 1e-12);
        // No SMs: well-defined neutral values.
        let empty = LaunchStats::default().load_imbalance();
        assert_eq!(empty.max, 0);
        assert_eq!(empty.ratio(), 1.0);
    }

    #[test]
    fn merge_sums_stall_breakdowns() {
        use trace::StallReason;
        let mut a = SmStats::default();
        a.stalls.add(StallReason::TexMiss, 10);
        let mut b = SmStats::default();
        b.stalls.add(StallReason::TexMiss, 5);
        b.stalls.add(StallReason::Barrier, 2);
        a.merge(&b);
        assert_eq!(a.stalls.tex_miss, 15);
        assert_eq!(a.stalls.barrier, 2);
    }

    #[test]
    fn metrics_snapshot_covers_stalls_and_sms() {
        use trace::StallReason;
        let mut sm0 = SmStats {
            cycles: 100,
            idle_cycles: 30,
            ..Default::default()
        };
        sm0.stalls.add(StallReason::GlobalLatency, 30);
        let mut totals = sm0.clone();
        let sm1 = SmStats {
            cycles: 80,
            idle_cycles: 0,
            ..Default::default()
        };
        totals.merge(&sm1);
        let ls = LaunchStats {
            cycles: 100,
            per_sm_cycles: vec![100, 80],
            per_sm: vec![sm0, sm1],
            totals,
            blocks: 2,
            warps: 4,
            device_mem_high_water: 0,
        };
        let snap = ls.metrics(1.0e6, 1024);
        assert!(snap.get("acsim_launch_cycles", &[]).is_some());
        assert!(snap.get("acsim_throughput_gbps", &[]).is_some());
        assert!(snap
            .get("acsim_stall_cycles", &[("reason", "global-latency")])
            .is_some());
        assert!(snap.get("acsim_sm_idle_cycles", &[("sm", "1")]).is_some());
        let summary = ls.stall_summary();
        assert!(summary.contains("global-latency"), "{summary}");
    }
}
