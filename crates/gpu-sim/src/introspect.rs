//! Spatial memory-hierarchy introspection.
//!
//! The trace layer (PR 2) answers *how many* cycles stalled per reason;
//! this layer answers *where*: which texture-cache sets thrash, which STT
//! states stay resident (the texture-locality story of paper Figs. 13–17),
//! which shared-memory banks serialize, and how bursty the DRAM channel is.
//!
//! Same zero-cost-when-disabled contract as the fault and trace hooks: the
//! device holds an `Option<Box<IntrospectState>>`, every probe is a single
//! branch when disarmed, and observation never feeds back into timing —
//! armed and disarmed launches produce bit-identical `LaunchStats`.

use crate::config::GpuConfig;
use crate::texture::Texture2d;
use mem_sim::{BankHistogram, BusyInterval, CacheStats, SetStats};
use serde::{Deserialize, Serialize};

/// What to collect and how much of it to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntrospectConfig {
    /// Merged DRAM busy intervals retained per SM (burstiness beyond the
    /// cap is counted in `DramStats` but not stored).
    pub max_busy_intervals: usize,
}

impl Default for IntrospectConfig {
    fn default() -> Self {
        IntrospectConfig {
            max_busy_intervals: 4096,
        }
    }
}

/// One SM's spatial snapshot, harvested when the SM retires its last block.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmIntrospection {
    /// SM index.
    pub sm: u32,
    /// Aggregate texture-L1 counters (also reachable via `SmStats`; kept
    /// here so per-set sums can be checked against their own aggregate).
    pub tex_l1: CacheStats,
    /// Per-set texture-L1 counters, indexed by set.
    pub tex_l1_sets: Vec<SetStats>,
    /// Aggregate texture-L2 counters.
    pub tex_l2: CacheStats,
    /// Per-set texture-L2 counters, indexed by set.
    pub tex_l2_sets: Vec<SetStats>,
    /// Tiled base addresses of texture-L1 lines resident at SM retirement —
    /// the residency snapshot behind the hot-state heatmap.
    pub tex_resident_lines: Vec<u64>,
    /// Shared-memory bank traffic and serialization degrees.
    pub banks: BankHistogram,
    /// Merged busy intervals of this SM's DRAM channel slice.
    pub dram_busy: Vec<BusyInterval>,
    /// Texture fetches per `(texture, row)`; for the STT texture, row ==
    /// DFA state id, so `row_fetches[stt][s]` counts visits to state `s`.
    pub row_fetches: Vec<Vec<u64>>,
    /// Total texture fetches per texture (Σ over rows of `row_fetches`,
    /// kept separately so hit shares don't need a rescan).
    #[serde(default)]
    pub tex_fetches: Vec<u64>,
    /// Texture-L1 hits per texture — the per-texture split the aggregate
    /// `tex_l1` counters cannot provide. `tex_l1_hits[t] / tex_fetches[t]`
    /// is texture `t`'s L1 residency share, the quantity the STT-layout
    /// auto-picker maximizes for the state-table texture.
    #[serde(default)]
    pub tex_l1_hits: Vec<u64>,
    /// Texture-L2 hits per texture (counted on L1 misses only) — which
    /// texture's working set stays on-chip versus paying DRAM line fills.
    #[serde(default)]
    pub tex_l2_hits: Vec<u64>,
}

/// Device-wide introspection: one snapshot per SM plus fold-up helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Introspection {
    /// Per-SM snapshots, in SM order.
    pub per_sm: Vec<SmIntrospection>,
}

impl Introspection {
    /// Texture-L1 per-set counters summed over SMs.
    pub fn tex_l1_sets(&self) -> Vec<SetStats> {
        Self::fold_sets(self.per_sm.iter().map(|s| &s.tex_l1_sets))
    }

    /// Texture-L2 per-set counters summed over SMs.
    pub fn tex_l2_sets(&self) -> Vec<SetStats> {
        Self::fold_sets(self.per_sm.iter().map(|s| &s.tex_l2_sets))
    }

    fn fold_sets<'a>(per_sm: impl Iterator<Item = &'a Vec<SetStats>>) -> Vec<SetStats> {
        let mut out: Vec<SetStats> = Vec::new();
        for sets in per_sm {
            if out.len() < sets.len() {
                out.resize(sets.len(), SetStats::default());
            }
            for (o, s) in out.iter_mut().zip(sets) {
                o.accesses += s.accesses;
                o.hits += s.hits;
                o.evictions += s.evictions;
            }
        }
        out
    }

    /// Shared-memory bank histogram folded over SMs.
    pub fn bank_histogram(&self) -> BankHistogram {
        let mut out = BankHistogram::default();
        for s in &self.per_sm {
            out.merge(&s.banks);
        }
        out
    }

    /// Texture fetches per row of texture `tex`, summed over SMs. For the
    /// STT texture this is the hot-state visit profile.
    pub fn row_fetches(&self, tex: usize) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for s in &self.per_sm {
            let Some(rows) = s.row_fetches.get(tex) else {
                continue;
            };
            if out.len() < rows.len() {
                out.resize(rows.len(), 0);
            }
            for (o, &r) in out.iter_mut().zip(rows) {
                *o += r;
            }
        }
        out
    }

    /// How many SMs still held each row of `tex` in texture L1 at
    /// retirement (0..=num_sms per row) — the residency half of the
    /// hot-state heatmap. Lines whose addresses fall outside `tex` (other
    /// textures, padding) are skipped.
    pub fn resident_rows(&self, tex: &Texture2d) -> Vec<u64> {
        let mut out = vec![0u64; tex.rows() as usize];
        for s in &self.per_sm {
            for &line in &s.tex_resident_lines {
                if let Some(row) = tex.row_of_tiled_addr(line) {
                    out[row as usize] += 1;
                }
            }
        }
        out
    }

    /// `(fetches, L1 hits)` for texture `tex`, summed over SMs. Returns
    /// `(0, 0)` for textures the launch never touched.
    pub fn tex_hit_counts(&self, tex: usize) -> (u64, u64) {
        let mut fetches = 0u64;
        let mut hits = 0u64;
        for s in &self.per_sm {
            fetches += s.tex_fetches.get(tex).copied().unwrap_or(0);
            hits += s.tex_l1_hits.get(tex).copied().unwrap_or(0);
        }
        (fetches, hits)
    }

    /// Texture-L1 hit rate of texture `tex` alone — how resident that
    /// texture's working set stayed, independent of traffic to the other
    /// bound textures. `None` when the texture saw no fetches.
    pub fn tex_l1_hit_rate(&self, tex: usize) -> Option<f64> {
        let (fetches, hits) = self.tex_hit_counts(tex);
        (fetches > 0).then(|| hits as f64 / fetches as f64)
    }

    /// `(L2 accesses, L2 hits)` for texture `tex`, summed over SMs. L2
    /// accesses are exactly the texture's L1 misses.
    pub fn tex_l2_counts(&self, tex: usize) -> (u64, u64) {
        let (fetches, l1_hits) = self.tex_hit_counts(tex);
        let mut hits = 0u64;
        for s in &self.per_sm {
            hits += s.tex_l2_hits.get(tex).copied().unwrap_or(0);
        }
        (fetches - l1_hits, hits)
    }

    /// Texture-L2 hit rate of texture `tex` alone — of this texture's L1
    /// misses, the share served on-chip rather than by a DRAM line fill.
    /// `None` when every fetch hit L1 (or the texture saw none).
    pub fn tex_l2_hit_rate(&self, tex: usize) -> Option<f64> {
        let (accesses, hits) = self.tex_l2_counts(tex);
        (accesses > 0).then(|| hits as f64 / accesses as f64)
    }

    /// Total DRAM busy cycles summed over SM channel slices.
    pub fn dram_busy_cycles(&self) -> u64 {
        self.per_sm
            .iter()
            .flat_map(|s| &s.dram_busy)
            .map(|b| b.cycles())
            .sum()
    }
}

/// The armed hook held by the device (mirrors `FaultState`/`TraceBuffer`).
#[derive(Debug, Clone)]
pub struct IntrospectState {
    pub(crate) cfg: IntrospectConfig,
    pub(crate) result: Introspection,
}

impl IntrospectState {
    /// Fresh state with nothing collected yet.
    pub fn new(cfg: IntrospectConfig) -> Self {
        IntrospectState {
            cfg,
            result: Introspection::default(),
        }
    }
}

/// Armed-only collection sink threaded into the kernel context. Created per
/// SM by the scheduler when introspection is armed; the extra scans it
/// implies (per-bank word counts, per-row fetch counts) run only on that
/// path.
#[derive(Debug)]
pub struct SmProbe {
    /// Shared-memory bank traffic.
    pub banks: BankHistogram,
    /// Fetch counts per `(texture, row)`.
    pub row_fetches: Vec<Vec<u64>>,
    /// Fetch totals per texture.
    pub tex_fetches: Vec<u64>,
    /// Texture-L1 hits per texture.
    pub tex_l1_hits: Vec<u64>,
    /// Texture-L2 hits per texture (on L1 misses).
    pub tex_l2_hits: Vec<u64>,
}

impl SmProbe {
    pub(crate) fn new(cfg: &GpuConfig, textures: &[Texture2d]) -> Self {
        SmProbe {
            banks: BankHistogram::new(cfg.shared_banks),
            row_fetches: textures
                .iter()
                .map(|t| vec![0u64; t.rows() as usize])
                .collect(),
            tex_fetches: vec![0; textures.len()],
            tex_l1_hits: vec![0; textures.len()],
            tex_l2_hits: vec![0; textures.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn snap(sm: u32) -> SmIntrospection {
        SmIntrospection {
            sm,
            tex_l1_sets: vec![
                SetStats {
                    accesses: 10,
                    hits: 8,
                    evictions: 1,
                },
                SetStats {
                    accesses: 2,
                    hits: 0,
                    evictions: 0,
                },
            ],
            row_fetches: vec![vec![5, 0, 7]],
            tex_fetches: vec![12],
            tex_l1_hits: vec![9],
            dram_busy: vec![BusyInterval { start: 0, end: 10 }],
            ..SmIntrospection::default()
        }
    }

    #[test]
    fn folds_sum_over_sms() {
        let intro = Introspection {
            per_sm: vec![snap(0), snap(1)],
        };
        let sets = intro.tex_l1_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].accesses, 20);
        assert_eq!(sets[0].hits, 16);
        assert_eq!(sets[1].accesses, 4);
        assert_eq!(intro.row_fetches(0), vec![10, 0, 14]);
        assert_eq!(intro.row_fetches(7), Vec::<u64>::new());
        assert_eq!(intro.tex_hit_counts(0), (24, 18));
        assert_eq!(intro.tex_l1_hit_rate(0), Some(0.75));
        assert_eq!(intro.tex_l1_hit_rate(7), None);
        assert_eq!(intro.dram_busy_cycles(), 20);
    }

    #[test]
    fn resident_rows_maps_lines_through_the_texture() {
        let tex = Texture2d::new(Arc::new((0..4u32 * 257).collect()), 4, 257);
        let line0 = tex.tiled_addr(0, 0) & !31; // row 0 segment
        let line3 = tex.tiled_addr(3, 8) & !31; // row 3 segment
        let intro = Introspection {
            per_sm: vec![SmIntrospection {
                tex_resident_lines: vec![line0, line3, 1 << 40],
                ..SmIntrospection::default()
            }],
        };
        assert_eq!(intro.resident_rows(&tex), vec![1, 0, 0, 1]);
    }
}
