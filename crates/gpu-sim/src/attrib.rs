//! Workload cycle attribution: charge simulated SM time to kernel-chosen
//! labels (for the AC kernels, the DFA state each lane is visiting).
//!
//! The trace layer answers *how many* cycles stalled per reason and the
//! introspection layer answers *where in the memory hierarchy*; this layer
//! answers *whose fault*: which part of the workload (which automaton
//! state, and through the host-side ownership fold, which pattern) the
//! machine was burning cycles on. Kernels tag each step with per-lane
//! labels via [`crate::WarpCtx::attribute`]; the scheduler splits every
//! issue slot and every idle gap across the labels of the step that
//! occupied or ended it.
//!
//! Same zero-cost-when-disabled contract as the fault/trace/introspect
//! hooks: the device holds an `Option<Box<AttributionState>>`, every charge
//! is a single branch when disarmed, and observation never feeds back into
//! timing — armed and disarmed launches produce bit-identical
//! `LaunchStats`.
//!
//! Accounting is conservative by construction: for each SM,
//! `Σ state_cycles + unattributed_cycles + drain_cycles == cycles`.
//! Unattributed cycles are steps the kernel chose not to label (staging,
//! barriers, result writes) plus idle gaps ended by such steps;
//! drain cycles are the in-flight-memory tail after the last issue slot.

use serde::{Deserialize, Serialize};

/// A per-lane workload label for one step. The label space is owned by the
/// kernel (the AC kernels use their device-side state encoding; the host
/// remaps to original DFA ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAttr {
    /// Kernel-chosen label (for AC kernels: device state id).
    pub label: u32,
    /// Whether the lane is on a failure-chain edge this step (charged to
    /// `fail_cycles[label]` as a sub-bucket of `state_cycles[label]`).
    pub fail: bool,
}

impl LaneAttr {
    /// A non-failure label.
    pub fn state(label: u32) -> Self {
        LaneAttr { label, fail: false }
    }
}

/// Bounds on what the attribution collectors retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionConfig {
    /// Largest label index tracked per SM; charges to labels at or past
    /// this bound fall into `unattributed_cycles` instead of growing the
    /// vectors without limit.
    pub max_labels: usize,
}

impl Default for AttributionConfig {
    fn default() -> Self {
        AttributionConfig {
            max_labels: 1 << 20,
        }
    }
}

/// One SM's attribution ledger, harvested when the SM retires its last
/// block. Vectors are indexed by label and sized to the largest label the
/// SM actually charged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmAttribution {
    /// SM index.
    pub sm: u32,
    /// Issue + idle cycles charged per label.
    pub state_cycles: Vec<u64>,
    /// The failure-chain share of `state_cycles`, per label (a sub-bucket,
    /// not an additional bucket).
    pub fail_cycles: Vec<u64>,
    /// Texture fetches performed while a lane carried each label.
    pub tex_fetches: Vec<u64>,
    /// Texture-L1 misses among those fetches.
    pub tex_misses: Vec<u64>,
    /// Cycles of unlabeled steps, gaps ended by unlabeled steps, and
    /// charges past the label bound.
    pub unattributed_cycles: u64,
    /// In-flight-memory tail after the SM's last issue slot.
    pub drain_cycles: u64,
    /// The SM's total cycles (equals `SmStats::cycles`); pins the
    /// conservation invariant.
    pub cycles: u64,
}

/// Device-wide attribution: one ledger per SM plus fold-up helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Per-SM ledgers, in SM order.
    pub per_sm: Vec<SmAttribution>,
}

impl Attribution {
    fn fold(per_sm: impl Iterator<Item = impl AsRef<[u64]>>) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for v in per_sm {
            let v = v.as_ref();
            if out.len() < v.len() {
                out.resize(v.len(), 0);
            }
            for (o, &x) in out.iter_mut().zip(v) {
                *o += x;
            }
        }
        out
    }

    /// Cycles charged per label, summed over SMs.
    pub fn state_cycles(&self) -> Vec<u64> {
        Self::fold(self.per_sm.iter().map(|s| &s.state_cycles))
    }

    /// Failure-chain cycles per label, summed over SMs.
    pub fn fail_cycles(&self) -> Vec<u64> {
        Self::fold(self.per_sm.iter().map(|s| &s.fail_cycles))
    }

    /// Texture fetches per label, summed over SMs.
    pub fn tex_fetches(&self) -> Vec<u64> {
        Self::fold(self.per_sm.iter().map(|s| &s.tex_fetches))
    }

    /// Texture-L1 misses per label, summed over SMs.
    pub fn tex_misses(&self) -> Vec<u64> {
        Self::fold(self.per_sm.iter().map(|s| &s.tex_misses))
    }

    /// Unattributed cycles summed over SMs.
    pub fn unattributed_cycles(&self) -> u64 {
        self.per_sm.iter().map(|s| s.unattributed_cycles).sum()
    }

    /// Drain cycles summed over SMs.
    pub fn drain_cycles(&self) -> u64 {
        self.per_sm.iter().map(|s| s.drain_cycles).sum()
    }

    /// Total SM cycles summed over SMs (= Σ `LaunchStats::per_sm_cycles`).
    pub fn total_cycles(&self) -> u64 {
        self.per_sm.iter().map(|s| s.cycles).sum()
    }
}

/// The armed hook held by the device (mirrors `IntrospectState`).
#[derive(Debug, Clone)]
pub struct AttributionState {
    pub(crate) cfg: AttributionConfig,
    pub(crate) result: Attribution,
}

impl AttributionState {
    /// Fresh state with nothing collected yet.
    pub fn new(cfg: AttributionConfig) -> Self {
        AttributionState {
            cfg,
            result: Attribution::default(),
        }
    }
}

/// Armed-only per-SM collection sink. The scheduler clears the per-lane
/// step labels before each warp step; the kernel fills them through
/// [`crate::WarpCtx::attribute`]; the scheduler then charges the step's
/// issue cycles (and any idle gap the warp later ends) across them.
#[derive(Debug)]
pub(crate) struct SmAttrSink {
    max_labels: usize,
    /// Labels of the step currently being issued, indexed by lane.
    step: Vec<Option<LaneAttr>>,
    pub(crate) state_cycles: Vec<u64>,
    pub(crate) fail_cycles: Vec<u64>,
    pub(crate) tex_fetches: Vec<u64>,
    pub(crate) tex_misses: Vec<u64>,
    pub(crate) unattributed: u64,
}

impl SmAttrSink {
    pub(crate) fn new(cfg: &AttributionConfig, warp_size: u32) -> Self {
        SmAttrSink {
            max_labels: cfg.max_labels,
            step: vec![None; warp_size as usize],
            state_cycles: Vec::new(),
            fail_cycles: Vec::new(),
            tex_fetches: Vec::new(),
            tex_misses: Vec::new(),
            unattributed: 0,
        }
    }

    /// Reset the per-lane labels ahead of one warp step.
    pub(crate) fn begin_step(&mut self) {
        self.step.fill(None);
    }

    /// Record the step's per-lane labels (called by the kernel, at most
    /// once per step, before any texture fetch it wants counted).
    pub(crate) fn set_lanes(&mut self, lanes: &[Option<LaneAttr>]) {
        let n = lanes.len().min(self.step.len());
        self.step[..n].copy_from_slice(&lanes[..n]);
    }

    /// Count a texture fetch performed by `lane` under its current label.
    pub(crate) fn note_tex_fetch(&mut self, lane: usize, l1_hit: bool) {
        let Some(Some(attr)) = self.step.get(lane) else {
            return;
        };
        let label = attr.label as usize;
        if label >= self.max_labels {
            return;
        }
        if self.tex_fetches.len() <= label {
            self.tex_fetches.resize(label + 1, 0);
            self.tex_misses.resize(label + 1, 0);
        }
        self.tex_fetches[label] += 1;
        if !l1_hit {
            self.tex_misses[label] += 1;
        }
    }

    /// Charge the step's issue cycles across its labels.
    pub(crate) fn charge_step(&mut self, cycles: u64) {
        let labels: Vec<LaneAttr> = self.step.iter().flatten().copied().collect();
        self.charge_labels(&labels, cycles);
    }

    /// The step's active labels, for the scheduler to remember as the
    /// warp's last attribution (idle gaps it later ends charge there).
    pub(crate) fn step_labels(&self) -> impl Iterator<Item = LaneAttr> + '_ {
        self.step.iter().flatten().copied()
    }

    /// Split `cycles` integer-exactly across `labels` (quotient each, the
    /// remainder one extra cycle to the first lanes). Empty or out-of-bound
    /// labels charge `unattributed` — no cycle is ever dropped.
    pub(crate) fn charge_labels(&mut self, labels: &[LaneAttr], cycles: u64) {
        if labels.is_empty() {
            self.unattributed += cycles;
            return;
        }
        let n = labels.len() as u64;
        let q = cycles / n;
        let r = cycles % n;
        for (i, attr) in labels.iter().enumerate() {
            let share = q + u64::from((i as u64) < r);
            if share == 0 {
                continue;
            }
            let label = attr.label as usize;
            if label >= self.max_labels {
                self.unattributed += share;
                continue;
            }
            if self.state_cycles.len() <= label {
                self.state_cycles.resize(label + 1, 0);
                self.fail_cycles.resize(label + 1, 0);
            }
            self.state_cycles[label] += share;
            if attr.fail {
                self.fail_cycles[label] += share;
            }
        }
    }

    /// Seal the ledger when the SM retires.
    pub(crate) fn finish(self, sm: u32, drain_cycles: u64, cycles: u64) -> SmAttribution {
        SmAttribution {
            sm,
            state_cycles: self.state_cycles,
            fail_cycles: self.fail_cycles,
            tex_fetches: self.tex_fetches,
            tex_misses: self.tex_misses,
            unattributed_cycles: self.unattributed,
            drain_cycles,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> SmAttrSink {
        SmAttrSink::new(&AttributionConfig::default(), 4)
    }

    #[test]
    fn split_is_integer_exact() {
        let mut s = sink();
        let labels = [LaneAttr::state(0), LaneAttr::state(1), LaneAttr::state(1)];
        s.charge_labels(&labels, 10); // 10 = 4 + 3 + 3
        assert_eq!(s.state_cycles, vec![4, 6]);
        assert_eq!(s.state_cycles.iter().sum::<u64>(), 10);
        assert_eq!(s.unattributed, 0);
    }

    #[test]
    fn empty_and_overbound_labels_go_unattributed() {
        let mut s = SmAttrSink::new(&AttributionConfig { max_labels: 2 }, 4);
        s.charge_labels(&[], 7);
        s.charge_labels(&[LaneAttr::state(5), LaneAttr::state(1)], 4);
        assert_eq!(s.unattributed, 7 + 2);
        assert_eq!(s.state_cycles, vec![0, 2]);
    }

    #[test]
    fn fail_cycles_are_a_sub_bucket() {
        let mut s = sink();
        s.charge_labels(
            &[
                LaneAttr {
                    label: 3,
                    fail: true,
                },
                LaneAttr::state(3),
            ],
            6,
        );
        assert_eq!(s.state_cycles[3], 6);
        assert_eq!(s.fail_cycles[3], 3);
    }

    #[test]
    fn step_labels_flow_through_tex_counting() {
        let mut s = sink();
        s.begin_step();
        s.set_lanes(&[
            Some(LaneAttr::state(2)),
            None,
            Some(LaneAttr::state(0)),
            None,
        ]);
        s.note_tex_fetch(0, false);
        s.note_tex_fetch(1, false); // unlabeled lane: ignored
        s.note_tex_fetch(2, true);
        assert_eq!(s.tex_fetches, vec![1, 0, 1]);
        assert_eq!(s.tex_misses, vec![0, 0, 1]);
        let labels: Vec<LaneAttr> = s.step_labels().collect();
        assert_eq!(labels.len(), 2);
        s.begin_step();
        assert_eq!(s.step_labels().count(), 0);
    }

    #[test]
    fn folds_sum_over_sms_and_conserve() {
        let sm = |sm: u32| SmAttribution {
            sm,
            state_cycles: vec![5, 0, 7],
            fail_cycles: vec![1, 0, 0],
            tex_fetches: vec![2, 2],
            tex_misses: vec![0, 1],
            unattributed_cycles: 3,
            drain_cycles: 5,
            cycles: 20,
        };
        let a = Attribution {
            per_sm: vec![sm(0), sm(1)],
        };
        assert_eq!(a.state_cycles(), vec![10, 0, 14]);
        assert_eq!(a.fail_cycles(), vec![2, 0, 0]);
        assert_eq!(a.tex_fetches(), vec![4, 4]);
        assert_eq!(a.tex_misses(), vec![0, 2]);
        assert_eq!(a.unattributed_cycles(), 6);
        assert_eq!(a.drain_cycles(), 10);
        assert_eq!(a.total_cycles(), 40);
        for s in &a.per_sm {
            assert_eq!(
                s.state_cycles.iter().sum::<u64>() + s.unattributed_cycles + s.drain_cycles,
                s.cycles
            );
        }
    }
}
