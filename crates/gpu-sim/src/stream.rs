//! Streams: in-order command queues with cross-stream overlap.
//!
//! CUDA exposes concurrency between host↔device copies and kernel
//! execution through *streams*: each stream is an in-order queue of
//! operations, and operations from different streams may overlap when
//! they occupy different hardware engines. On the GT200 there are exactly
//! two such engines — one DMA copy engine and the compute engine — so at
//! any instant at most one copy and one kernel are in flight, regardless
//! of how many streams the host created. This module models that shape:
//!
//! * [`StreamEngine`] — a deterministic event-timeline scheduler. Ops are
//!   submitted in host issue order; each op starts at the latest of its
//!   stream's readiness (program order), its engine's availability (the
//!   single DMA/compute queue is FIFO in issue order, which also
//!   reproduces the classic head-of-line "false dependency" of
//!   single-queue hardware), any awaited events, and an optional
//!   host-side release time.
//! * [`StreamTimeline`] — the scheduled ops with start/end times, busy
//!   accounting per engine, and a Chrome trace-event export
//!   ([`StreamTimeline::to_trace`]) whose rows are one pid per stream so
//!   the overlap is visible in Perfetto.
//!
//! Time is modelled in *seconds* (f64) rather than device cycles because
//! the timeline spans two clock domains — PCIe copies and kernel
//! execution; the trace export quantizes to cycles only for display.
//! Everything is deterministic: identical submissions yield identical
//! timelines.

use serde::{Deserialize, Serialize};
use trace::{ArgValue, TraceBuffer, TraceConfig};

/// First Chrome-trace pid used for per-stream rows (pids 0/1 are the
/// host/device rows of kernel traces, pids 2–4 the serving-telemetry
/// rows). Stream rows must stay above every reserved pid so a stitched
/// serving trace keeps job lifecycle tracks and stream-op tracks in
/// disjoint pid ranges.
pub const PID_STREAM_BASE: u32 = 16;
const _: () = assert!(PID_STREAM_BASE >= trace::PID_SERVE_LIMIT);

/// Pid stride between devices in a stitched multi-device trace: device
/// `d`'s stream rows live at pids `device_pid_base(d) ..
/// device_pid_base(d) + DEVICE_PID_STRIDE`, so a fleet trace keeps each
/// device's streams in its own disjoint pid plane. Device 0's plane is
/// exactly the single-device plane ([`PID_STREAM_BASE`]).
pub const DEVICE_PID_STRIDE: u32 = 16;

/// First Chrome-trace pid for `device`'s stream rows.
pub fn device_pid_base(device: u32) -> u32 {
    PID_STREAM_BASE + device * DEVICE_PID_STRIDE
}

/// What an operation does, which determines the engine it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamOpKind {
    /// Host→device copy (DMA engine).
    CopyH2D,
    /// Device→host copy (same single DMA engine on GT200).
    CopyD2H,
    /// Kernel execution (compute engine).
    Kernel,
}

impl StreamOpKind {
    /// The hardware engine this op occupies.
    pub fn engine(self) -> EngineKind {
        match self {
            StreamOpKind::CopyH2D | StreamOpKind::CopyD2H => EngineKind::Copy,
            StreamOpKind::Kernel => EngineKind::Compute,
        }
    }

    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            StreamOpKind::CopyH2D => "h2d",
            StreamOpKind::CopyD2H => "d2h",
            StreamOpKind::Kernel => "kernel",
        }
    }
}

/// The two overlap-capable hardware resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The single DMA copy engine.
    Copy,
    /// The compute engine.
    Compute,
}

/// A scheduled operation on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// Stream the op was issued to.
    pub stream: u32,
    /// Operation kind.
    pub kind: StreamOpKind,
    /// Caller-supplied label (e.g. `"seg3"` or `"batch12"`).
    pub label: String,
    /// Scheduled start time in seconds.
    pub start: f64,
    /// Scheduled end time in seconds.
    pub end: f64,
    /// Payload bytes (0 for kernels).
    pub bytes: u64,
}

impl ScheduledOp {
    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// An event recorded on a stream ([`StreamEngine::record_event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

/// Deterministic stream scheduler: two engines, N in-order streams.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    /// Per-stream readiness (end of the last op issued to it).
    stream_ready: Vec<f64>,
    /// When the copy engine finishes its last issued op.
    copy_free: f64,
    /// When the compute engine finishes its last issued op.
    compute_free: f64,
    /// Completion time of each recorded event.
    events: Vec<f64>,
    /// Events the *next* op on each stream must wait for.
    pending_waits: Vec<Vec<usize>>,
    ops: Vec<ScheduledOp>,
}

impl StreamEngine {
    /// An engine with `streams` empty in-order queues (at least one).
    pub fn new(streams: u32) -> Self {
        let n = streams.max(1) as usize;
        StreamEngine {
            stream_ready: vec![0.0; n],
            copy_free: 0.0,
            compute_free: 0.0,
            events: Vec::new(),
            pending_waits: vec![Vec::new(); n],
            ops: Vec::new(),
        }
    }

    /// Number of streams.
    pub fn streams(&self) -> u32 {
        self.stream_ready.len() as u32
    }

    /// When `stream`'s last issued op completes.
    pub fn stream_ready(&self, stream: u32) -> f64 {
        self.stream_ready[stream as usize]
    }

    /// The stream that becomes idle first (lowest id on ties) and when.
    pub fn next_free_stream(&self) -> (u32, f64) {
        let mut best = (0u32, self.stream_ready[0]);
        for (i, &t) in self.stream_ready.iter().enumerate().skip(1) {
            if t < best.1 {
                best = (i as u32, t);
            }
        }
        best
    }

    /// When an op of `kind` submitted to `stream` with host release time
    /// `not_before` would start, without scheduling anything. This is the
    /// exact start computation of [`StreamEngine::submit_at`] (stream
    /// program order, awaited events, engine FIFO availability) with no
    /// state mutated — a fleet dispatcher uses it to ask a shared bus
    /// arbiter for a release time and then submits at the granted time.
    pub fn earliest_start(&self, stream: u32, kind: StreamOpKind, not_before: f64) -> f64 {
        let s = stream as usize;
        let mut ready = self.stream_ready[s].max(not_before);
        for &ev in &self.pending_waits[s] {
            ready = ready.max(self.events[ev]);
        }
        let engine_free = match kind.engine() {
            EngineKind::Copy => self.copy_free,
            EngineKind::Compute => self.compute_free,
        };
        ready.max(engine_free)
    }

    /// Submit an op released to the device at time 0.
    pub fn submit(
        &mut self,
        stream: u32,
        kind: StreamOpKind,
        label: &str,
        seconds: f64,
        bytes: u64,
    ) -> ScheduledOp {
        self.submit_at(stream, kind, label, seconds, bytes, 0.0)
    }

    /// Submit an op the host releases no earlier than `not_before`
    /// seconds (e.g. a serve batch dispatched when its jobs arrived).
    ///
    /// The op starts at the latest of: `not_before`, the stream's program
    /// order, awaited events, and its engine's FIFO availability.
    pub fn submit_at(
        &mut self,
        stream: u32,
        kind: StreamOpKind,
        label: &str,
        seconds: f64,
        bytes: u64,
        not_before: f64,
    ) -> ScheduledOp {
        assert!(seconds >= 0.0, "op duration must be non-negative");
        let s = stream as usize;
        let mut ready = self.stream_ready[s].max(not_before);
        for ev in self.pending_waits[s].drain(..) {
            ready = ready.max(self.events[ev]);
        }
        let engine_free = match kind.engine() {
            EngineKind::Copy => &mut self.copy_free,
            EngineKind::Compute => &mut self.compute_free,
        };
        let start = ready.max(*engine_free);
        let end = start + seconds;
        *engine_free = end;
        self.stream_ready[s] = end;
        let op = ScheduledOp {
            stream,
            kind,
            label: label.to_string(),
            start,
            end,
            bytes,
        };
        self.ops.push(op.clone());
        op
    }

    /// Record an event that completes when everything issued to `stream`
    /// so far has completed (CUDA `cudaEventRecord`).
    pub fn record_event(&mut self, stream: u32) -> EventId {
        self.events.push(self.stream_ready[stream as usize]);
        EventId(self.events.len() - 1)
    }

    /// Make the next op submitted to `stream` wait for `event`
    /// (CUDA `cudaStreamWaitEvent`).
    pub fn wait_event(&mut self, stream: u32, event: EventId) {
        self.pending_waits[stream as usize].push(event.0);
    }

    /// Completion time of a recorded event.
    pub fn event_seconds(&self, event: EventId) -> f64 {
        self.events[event.0]
    }

    /// Finish submission and return the timeline.
    pub fn finish(self) -> StreamTimeline {
        StreamTimeline {
            streams: self.stream_ready.len() as u32,
            ops: self.ops,
        }
    }
}

/// The complete scheduled timeline of a [`StreamEngine`] run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamTimeline {
    /// Number of streams the engine was created with.
    pub streams: u32,
    /// Every op in issue order, with scheduled times.
    pub ops: Vec<ScheduledOp>,
}

impl StreamTimeline {
    /// Makespan: when the last op completes.
    pub fn total_seconds(&self) -> f64 {
        self.ops.iter().fold(0.0, |acc, o| acc.max(o.end))
    }

    /// What the same ops would take end-to-end with no overlap at all:
    /// the left fold of durations in issue order (so a one-stream
    /// schedule, which cannot overlap anything, equals this exactly).
    pub fn serial_seconds(&self) -> f64 {
        self.ops.iter().fold(0.0, |acc, o| acc + o.seconds())
    }

    /// Total busy seconds of one engine.
    pub fn busy_seconds(&self, engine: EngineKind) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.kind.engine() == engine)
            .fold(0.0, |acc, o| acc + o.seconds())
    }

    /// Busy fraction of one engine over the makespan, in [0, 1].
    pub fn utilisation(&self, engine: EngineKind) -> f64 {
        let total = self.total_seconds();
        if total <= 0.0 {
            0.0
        } else {
            self.busy_seconds(engine) / total
        }
    }

    /// Seconds saved by overlap relative to the fully serial schedule.
    pub fn overlap_saved_seconds(&self) -> f64 {
        self.serial_seconds() - self.total_seconds()
    }

    /// Export as Chrome trace events: one pid per stream
    /// ([`PID_STREAM_BASE`]` + stream`), timestamps quantized to cycles
    /// at `clock_hz`. Load the result of
    /// [`trace::to_chrome_json`] in Perfetto to see copies and
    /// kernels from different streams overlapping.
    pub fn to_trace(&self, clock_hz: f64, cfg: TraceConfig) -> TraceBuffer {
        let mut tb = TraceBuffer::new(cfg);
        self.append_trace(&mut tb, clock_hz);
        tb
    }

    /// Append this timeline's ops into an existing buffer (same pid/cycle
    /// convention as [`StreamTimeline::to_trace`]). This is how the
    /// serving telemetry stitches per-job lifecycle spans (pids 2–4) and
    /// the stream ops that served them (pids ≥ [`PID_STREAM_BASE`]) into
    /// one Chrome trace.
    pub fn append_trace(&self, tb: &mut TraceBuffer, clock_hz: f64) {
        self.append_trace_with_base(tb, clock_hz, PID_STREAM_BASE);
    }

    /// Like [`StreamTimeline::append_trace`], but rooted at an arbitrary
    /// pid plane. Fleet traces stitch device `d`'s timeline at
    /// [`device_pid_base`]`(d)` so each device's streams stay visually
    /// and programmatically separable.
    pub fn append_trace_with_base(&self, tb: &mut TraceBuffer, clock_hz: f64, pid_base: u32) {
        for op in &self.ops {
            let start = (op.start * clock_hz).round() as u64;
            let dur = (op.seconds() * clock_hz).round() as u64;
            let mut args = vec![(
                "engine".to_string(),
                ArgValue::Str(
                    match op.kind.engine() {
                        EngineKind::Copy => "copy",
                        EngineKind::Compute => "compute",
                    }
                    .to_string(),
                ),
            )];
            if op.bytes > 0 {
                args.push(("bytes".to_string(), ArgValue::U64(op.bytes)));
            }
            tb.span(
                &format!("{}:{}", op.kind.label(), op.label),
                "stream",
                pid_base + op.stream,
                0,
                start,
                dur,
                args,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(sec: f64) -> (StreamOpKind, f64) {
        (StreamOpKind::Kernel, sec)
    }

    #[test]
    fn single_stream_is_fully_serial() {
        let mut e = StreamEngine::new(1);
        e.submit(0, StreamOpKind::CopyH2D, "a", 2.0, 100);
        e.submit(0, StreamOpKind::Kernel, "a", 3.0, 0);
        e.submit(0, StreamOpKind::CopyD2H, "a", 1.0, 10);
        let t = e.finish();
        assert_eq!(t.total_seconds(), 6.0);
        assert_eq!(t.serial_seconds(), 6.0);
        assert_eq!(t.overlap_saved_seconds(), 0.0);
    }

    #[test]
    fn two_streams_overlap_copy_with_compute() {
        // Stream 0: copy 2s + kernel 3s; stream 1 the same. The copy
        // engine runs stream 1's upload while stream 0's kernel runs.
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "s0", 2.0, 0);
        e.submit(1, StreamOpKind::CopyH2D, "s1", 2.0, 0);
        e.submit(0, StreamOpKind::Kernel, "s0", 3.0, 0);
        e.submit(1, StreamOpKind::Kernel, "s1", 3.0, 0);
        let t = e.finish();
        // u0 [0,2], u1 [2,4], k0 [2,5], k1 [5,8] vs 10s serial.
        assert_eq!(t.total_seconds(), 8.0);
        assert_eq!(t.serial_seconds(), 10.0);
        assert_eq!(t.busy_seconds(EngineKind::Copy), 4.0);
        assert_eq!(t.busy_seconds(EngineKind::Compute), 6.0);
    }

    #[test]
    fn copies_serialize_on_the_single_dma_engine() {
        // Two streams, copies only: no overlap is possible.
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "a", 2.0, 0);
        e.submit(1, StreamOpKind::CopyH2D, "b", 2.0, 0);
        e.submit(0, StreamOpKind::CopyD2H, "a", 2.0, 0);
        let t = e.finish();
        assert_eq!(t.total_seconds(), 6.0);
        assert_eq!(t.utilisation(EngineKind::Copy), 1.0);
        assert_eq!(t.utilisation(EngineKind::Compute), 0.0);
    }

    #[test]
    fn issue_order_fifo_creates_false_dependencies() {
        // The classic single-queue hazard: a d2h issued *before* another
        // stream's h2d blocks it even though the engine is idle when the
        // d2h is still waiting on its kernel.
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "a", 1.0, 0);
        e.submit(0, StreamOpKind::Kernel, "a", 10.0, 0);
        e.submit(0, StreamOpKind::CopyD2H, "a", 1.0, 0); // waits for kernel
        let held = e.submit(1, StreamOpKind::CopyH2D, "b", 1.0, 0);
        // d2h starts at 11 (after the kernel); the FIFO copy queue holds
        // stream 1's upload behind it even though the DMA engine idled
        // from 1 to 11.
        assert_eq!(held.start, 12.0);
    }

    #[test]
    fn events_order_across_streams() {
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::Kernel, "a", 5.0, 0);
        let ev = e.record_event(0);
        e.wait_event(1, ev);
        let dep = e.submit(1, StreamOpKind::Kernel, "b", 1.0, 0);
        assert_eq!(e.event_seconds(ev), 5.0);
        assert_eq!(dep.start, 5.0);
        assert_eq!(dep.end, 6.0);
    }

    #[test]
    fn not_before_releases_ops_late() {
        let mut e = StreamEngine::new(1);
        let op = e.submit_at(0, StreamOpKind::Kernel, "late", 1.0, 0, 7.0);
        assert_eq!(op.start, 7.0);
        // The next op queues behind it in program order.
        let (kind, sec) = k(2.0);
        let op2 = e.submit(0, kind, "tail", sec, 0);
        assert_eq!(op2.start, 8.0);
    }

    #[test]
    fn next_free_stream_prefers_lowest_id() {
        let mut e = StreamEngine::new(3);
        e.submit(0, StreamOpKind::Kernel, "a", 5.0, 0);
        e.submit(2, StreamOpKind::Kernel, "c", 1.0, 0);
        let (s, at) = e.next_free_stream();
        assert_eq!((s, at), (1, 0.0));
    }

    #[test]
    fn trace_export_carries_one_pid_per_stream() {
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "s0", 1.0, 64);
        e.submit(1, StreamOpKind::Kernel, "s1", 2.0, 0);
        let t = e.finish();
        let tb = t.to_trace(1.0e6, TraceConfig::default());
        assert_eq!(tb.len(), 2);
        let pids: Vec<u32> = tb.events().iter().map(|ev| ev.pid).collect();
        assert!(pids.contains(&PID_STREAM_BASE));
        assert!(pids.contains(&(PID_STREAM_BASE + 1)));
    }

    #[test]
    fn earliest_start_matches_submit_at_without_mutating() {
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "a", 2.0, 64);
        e.submit(0, StreamOpKind::Kernel, "a", 10.0, 0);
        let ev = e.record_event(0);
        e.wait_event(1, ev);
        for &(stream, kind, not_before) in &[
            (1, StreamOpKind::CopyH2D, 0.5),
            (1, StreamOpKind::Kernel, 0.0),
            (0, StreamOpKind::CopyD2H, 3.0),
        ] {
            let predicted = e.earliest_start(stream, kind, not_before);
            let mut probe = e.clone();
            let op = probe.submit_at(stream, kind, "probe", 1.0, 0, not_before);
            assert_eq!(predicted, op.start, "stream {stream} {kind:?}");
        }
        // The query drained nothing: submitting for real still honours
        // the pending event wait.
        let dep = e.submit(1, StreamOpKind::Kernel, "b", 1.0, 0);
        assert_eq!(dep.start, 12.0);
    }

    #[test]
    fn device_pid_planes_are_disjoint() {
        assert_eq!(device_pid_base(0), PID_STREAM_BASE);
        assert_eq!(device_pid_base(1), PID_STREAM_BASE + DEVICE_PID_STRIDE);
        assert!(device_pid_base(1) > device_pid_base(0) + 15);
    }

    #[test]
    fn append_trace_with_base_relocates_pids_only() {
        let mut e = StreamEngine::new(2);
        e.submit(0, StreamOpKind::CopyH2D, "s0", 1.0, 64);
        e.submit(1, StreamOpKind::Kernel, "s1", 2.0, 0);
        let t = e.finish();
        let mut base_tb = TraceBuffer::default();
        t.append_trace(&mut base_tb, 1.0e6);
        let mut dev1_tb = TraceBuffer::default();
        t.append_trace_with_base(&mut dev1_tb, 1.0e6, device_pid_base(1));
        assert_eq!(base_tb.len(), dev1_tb.len());
        for (a, b) in base_tb.events().iter().zip(dev1_tb.events()) {
            assert_eq!(a.pid + DEVICE_PID_STRIDE, b.pid);
            assert_eq!(a.name, b.name);
            assert_eq!(a.ts, b.ts);
        }
    }

    #[test]
    fn append_trace_stitches_into_an_existing_buffer() {
        let mut e = StreamEngine::new(1);
        e.submit(0, StreamOpKind::Kernel, "k", 2.0, 0);
        let t = e.finish();
        let mut tb = TraceBuffer::default();
        tb.instant(
            "queue-wait",
            "serve",
            trace::PID_SERVE_JOBS,
            0,
            0,
            Vec::new(),
        );
        t.append_trace(&mut tb, 1.0e6);
        assert_eq!(tb.len(), 2);
        // Serve pids and stream pids stay disjoint in the stitched trace.
        assert_eq!(tb.events()[0].pid, trace::PID_SERVE_JOBS);
        assert_eq!(tb.events()[1].pid, PID_STREAM_BASE);
        // Identical cycle quantization as the standalone export.
        let alone = t.to_trace(1.0e6, TraceConfig::default());
        assert_eq!(&tb.events()[1..], alone.events());
    }
}
