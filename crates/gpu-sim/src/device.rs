//! The host-visible device: global-memory allocation, texture binding, and
//! kernel launches.

use crate::alloc::{AllocStats, DeviceAllocator};
use crate::attrib::{Attribution, AttributionConfig, AttributionState};
use crate::config::GpuConfig;
use crate::constant::{ConstId, ConstantBuffer};
use crate::error::{DeviceError, LaunchError};
use crate::fault::{FaultState, InjectedFault, LaunchFault, HANG_CYCLES};
use crate::global::GlobalMemory;
use crate::introspect::{IntrospectConfig, IntrospectState, Introspection};
use crate::kernel::{WarpGeometry, WarpProgram};
use crate::scheduler::run_sm;
use crate::stats::{LaunchStats, SmStats};
use crate::texture::{TexId, Texture2d};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use trace::{TraceBuffer, TraceConfig};

/// Grid/block geometry of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block; must be a multiple of the warp size.
    pub threads_per_block: u32,
    /// Shared memory per block in bytes. The paper uses 8–12 KB of the
    /// 16 KB for staged input, "the remaining 4~8KB reserved for other
    /// works".
    pub shared_bytes_per_block: u32,
    /// Optional cap on blocks resident per SM, below the hardware limits.
    /// Used to express launches whose effective occupancy is lower than
    /// the occupancy calculator would grant — e.g. a kernel written with
    /// tiny logical blocks (the paper's global-only kernel assigns chunks
    /// per *thread processor*, ~64 threads per SM).
    #[serde(default)]
    pub resident_blocks_cap: Option<u32>,
}

impl LaunchConfig {
    /// Validate against a device.
    pub fn validate(&self, cfg: &GpuConfig) -> Result<(), LaunchError> {
        if self.grid_blocks == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        if self.threads_per_block == 0 || !self.threads_per_block.is_multiple_of(cfg.warp_size) {
            return Err(LaunchError::BadThreadsPerBlock {
                threads: self.threads_per_block,
                warp_size: cfg.warp_size,
            });
        }
        let warps = self.threads_per_block / cfg.warp_size;
        if warps > cfg.max_warps_per_sm {
            return Err(LaunchError::TooManyWarps {
                warps,
                limit: cfg.max_warps_per_sm,
            });
        }
        if self.shared_bytes_per_block > cfg.shared_mem_bytes {
            return Err(LaunchError::SharedMemExceeded {
                requested: self.shared_bytes_per_block,
                available: cfg.shared_mem_bytes,
            });
        }
        Ok(())
    }

    /// Blocks that can be resident on one SM simultaneously: limited by the
    /// hardware block slots, the warp budget, and shared-memory capacity —
    /// the standard CUDA occupancy computation.
    pub fn resident_blocks_per_sm(&self, cfg: &GpuConfig) -> u32 {
        let warps = self.threads_per_block / cfg.warp_size;
        let by_warps = cfg.max_warps_per_sm / warps.max(1);
        let by_shared = cfg
            .shared_mem_bytes
            .checked_div(self.shared_bytes_per_block)
            .unwrap_or(u32::MAX);
        let cap = self.resident_blocks_cap.unwrap_or(u32::MAX).max(1);
        cfg.max_blocks_per_sm
            .min(by_warps)
            .min(by_shared)
            .min(cap)
            .max(1)
    }
}

/// Outcome of a launch: timing/statistics plus the finished warp programs
/// (which carry whatever per-lane results the kernel accumulated), sorted
/// by `(block, warp)`.
#[derive(Debug)]
pub struct Launched<P> {
    /// Aggregate statistics and cycle time.
    pub stats: LaunchStats,
    /// Finished programs in `(block_id, warp_in_block)` order.
    pub programs: Vec<(WarpGeometry, P)>,
}

/// The simulated board.
#[derive(Debug)]
pub struct GpuDevice {
    cfg: GpuConfig,
    global: GlobalMemory,
    alloc: DeviceAllocator,
    textures: Vec<Texture2d>,
    constants: Vec<ConstantBuffer>,
    constant_bytes: usize,
    /// Armed fault-injection state, if any. `None` (the default) keeps
    /// every hook a single branch on the host side; simulated timing is
    /// computed from kernel memory traffic alone either way.
    fault: Option<Box<FaultState>>,
    /// Cycle budget enforced after each launch; a kernel exceeding it
    /// (injected hang or genuine runaway) fails with
    /// [`DeviceError::Watchdog`].
    watchdog: Option<u64>,
    /// Armed trace recorder, if any. Same zero-cost-when-disabled pattern
    /// as `fault`: `None` (the default) keeps every probe a single branch,
    /// and recording never feeds back into simulated timing, so armed and
    /// disarmed launches produce bit-identical statistics.
    trace: Option<Box<TraceBuffer>>,
    /// Armed spatial introspection (per-set cache counters, bank
    /// histograms, DRAM busy intervals, hot-row fetch counts), if any.
    /// Same zero-cost-when-disabled contract as `fault` and `trace`.
    introspect: Option<Box<IntrospectState>>,
    /// Armed workload attribution (per-label cycle/fetch ledgers fed by
    /// kernel `WarpCtx::attribute` calls), if any. Same
    /// zero-cost-when-disabled contract as `fault`, `trace`, `introspect`.
    attribution: Option<Box<AttributionState>>,
}

impl GpuDevice {
    /// Bring up a device.
    pub fn new(cfg: GpuConfig) -> Result<Self, DeviceError> {
        cfg.validate()?;
        let alloc = DeviceAllocator::new(cfg.device_mem_bytes);
        Ok(GpuDevice {
            cfg,
            global: GlobalMemory::new(0),
            alloc,
            textures: Vec::new(),
            constants: Vec::new(),
            constant_bytes: 0,
            fault: None,
            watchdog: None,
            trace: None,
            introspect: None,
            attribution: None,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Arm fault injection. Counters continue from wherever `state` left
    /// off, so a supervisor can move one [`FaultState`] across device
    /// instances and retried operations see fresh operation indices.
    pub fn arm_faults(&mut self, state: FaultState) {
        self.fault = Some(Box::new(state));
    }

    /// Disarm fault injection, returning the state (with its advanced
    /// counters and injection log) to the caller.
    pub fn disarm_faults(&mut self) -> Option<FaultState> {
        self.fault.take().map(|b| *b)
    }

    /// Whether fault injection is currently armed.
    pub fn faults_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Arm (or clear, with `None`) the launch watchdog: any launch whose
    /// simulated cycle count exceeds `budget` fails with
    /// [`DeviceError::Watchdog`] instead of returning results.
    pub fn set_watchdog(&mut self, budget: Option<u64>) {
        self.watchdog = budget;
    }

    /// Arm trace recording: subsequent launches append scheduler/DRAM
    /// events to a fresh buffer configured by `cfg`. Recording is
    /// observation-only — armed and disarmed launches produce bit-identical
    /// [`LaunchStats`].
    pub fn arm_trace(&mut self, cfg: TraceConfig) {
        self.trace = Some(Box::new(TraceBuffer::new(cfg)));
    }

    /// Disarm tracing, returning whatever was recorded since [`arm_trace`].
    ///
    /// [`arm_trace`]: GpuDevice::arm_trace
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take().map(|b| *b)
    }

    /// Whether trace recording is currently armed.
    pub fn trace_armed(&self) -> bool {
        self.trace.is_some()
    }

    /// Arm spatial introspection: subsequent launches collect per-set
    /// texture-cache counters, shared-bank histograms, DRAM busy intervals,
    /// and per-row texture fetch counts into one [`Introspection`] per
    /// device. Observation-only — armed and disarmed launches produce
    /// bit-identical [`LaunchStats`].
    pub fn arm_introspection(&mut self, cfg: IntrospectConfig) {
        self.introspect = Some(Box::new(IntrospectState::new(cfg)));
    }

    /// Disarm introspection, returning whatever was collected since
    /// [`arm_introspection`].
    ///
    /// [`arm_introspection`]: GpuDevice::arm_introspection
    pub fn take_introspection(&mut self) -> Option<Introspection> {
        self.introspect.take().map(|b| b.result)
    }

    /// Whether spatial introspection is currently armed.
    pub fn introspection_armed(&self) -> bool {
        self.introspect.is_some()
    }

    /// Arm workload attribution: subsequent launches charge every issue
    /// slot and idle gap to the per-lane labels kernels declare through
    /// [`crate::WarpCtx::attribute`], into one [`Attribution`] per device.
    /// Observation-only — armed and disarmed launches produce bit-identical
    /// [`LaunchStats`].
    pub fn arm_attribution(&mut self, cfg: AttributionConfig) {
        self.attribution = Some(Box::new(AttributionState::new(cfg)));
    }

    /// Disarm attribution, returning whatever was collected since
    /// [`arm_attribution`].
    ///
    /// [`arm_attribution`]: GpuDevice::arm_attribution
    pub fn take_attribution(&mut self) -> Option<Attribution> {
        self.attribution.take().map(|b| b.result)
    }

    /// Whether workload attribution is currently armed.
    pub fn attribution_armed(&self) -> bool {
        self.attribution.is_some()
    }

    /// Copy a device→host readback buffer "across the bus": counts one
    /// readback operation and applies any scheduled bit-flip to `buf` in
    /// place. Returns the fault that fired, if any. With no fault state
    /// armed this is a no-op.
    pub fn dma_to_host(&mut self, buf: &mut [u8]) -> Option<InjectedFault> {
        self.fault.as_mut()?.on_readback(buf)
    }

    /// Allocate `bytes` of global memory (256-byte aligned, like CUDA),
    /// returning the device address. Freed blocks are reused first-fit
    /// before the capacity frontier grows; fails when no contiguous
    /// region fits.
    pub fn alloc_global(&mut self, bytes: u64) -> Result<u64, DeviceError> {
        if let Some(fault) = self.fault.as_mut().and_then(|f| f.on_alloc()) {
            return Err(DeviceError::Fault(fault));
        }
        let base = self.alloc.alloc(bytes)?;
        let end = (base + bytes) as usize;
        if end > self.global.len() {
            let mut data = std::mem::take(&mut self.global).into_bytes();
            data.resize(end, 0);
            self.global = GlobalMemory::from_bytes(data);
        }
        Ok(base)
    }

    /// Release a block obtained from [`alloc_global`], making its space
    /// reusable (with coalescing of adjacent free blocks). Fails with
    /// [`DeviceError::InvalidFree`] on a double free or an address that
    /// was never allocated. The backing bytes are left in place, exactly
    /// like real device frees — reuse sees stale contents, not zeroes.
    ///
    /// [`alloc_global`]: GpuDevice::alloc_global
    pub fn free_global(&mut self, addr: u64) -> Result<(), DeviceError> {
        self.alloc.free(addr)
    }

    /// Cumulative allocator statistics: live bytes/blocks, high-water
    /// footprint, and the host cycles charged to alloc/free driver calls.
    pub fn alloc_stats(&self) -> AllocStats {
        self.alloc.stats()
    }

    /// Copy host bytes into global memory at `addr` (the `cudaMemcpy`
    /// host→device of the paper; excluded from kernel timing, as in §V).
    pub fn write_global(&mut self, addr: u64, data: &[u8]) {
        let mut bytes = std::mem::take(&mut self.global).into_bytes();
        bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        self.global = GlobalMemory::from_bytes(bytes);
    }

    /// Read back a global-memory range (device→host result copy).
    pub fn read_global(&self, addr: u64, len: usize) -> &[u8] {
        &self.global.bytes()[addr as usize..addr as usize + len]
    }

    /// Bind a read-only 2-D texture of `u32` texels. The data is shared,
    /// not copied, but its size still counts against device memory.
    pub fn bind_texture_2d(
        &mut self,
        data: Arc<Vec<u32>>,
        rows: u32,
        cols: u32,
    ) -> Result<TexId, DeviceError> {
        // Account for capacity without materializing a copy.
        self.alloc_global(data.len() as u64 * 4)?;
        self.textures.push(Texture2d::new(data, rows, cols));
        Ok(TexId(self.textures.len() - 1))
    }

    /// Bind a constant-memory buffer (≤ 64 KB total across buffers, the
    /// CUDA constant segment of this device generation).
    pub fn bind_constant(&mut self, data: Arc<Vec<u32>>) -> Result<ConstId, DeviceError> {
        let bytes = data.len() * 4;
        if self.constant_bytes + bytes > crate::constant::CONSTANT_MEMORY_BYTES {
            return Err(DeviceError::ConstantExhausted {
                used: self.constant_bytes,
                requested: bytes,
                capacity: crate::constant::CONSTANT_MEMORY_BYTES,
            });
        }
        self.constants
            .push(ConstantBuffer::new(data).map_err(DeviceError::ConstantInvalid)?);
        self.constant_bytes += bytes;
        Ok(ConstId(self.constants.len() - 1))
    }

    /// Launch a kernel: `factory` builds the [`WarpProgram`] for each warp
    /// of the grid. Blocks are distributed round-robin over the SMs, each
    /// SM is simulated independently with its own texture cache and DRAM
    /// bandwidth slice, and the launch time is the slowest SM.
    pub fn launch<P, F>(
        &mut self,
        lc: LaunchConfig,
        mut factory: F,
    ) -> Result<Launched<P>, DeviceError>
    where
        P: WarpProgram,
        F: FnMut(WarpGeometry) -> P,
    {
        lc.validate(&self.cfg)?;
        // An injected launch fault fires before the kernel executes — a
        // transient failure aborts here; a hang runs the kernel but
        // inflates its reported time past any sane watchdog budget.
        let launch_fault = self.fault.as_mut().and_then(|f| f.on_launch());
        if let Some(LaunchFault::Transient(fault)) = launch_fault {
            return Err(DeviceError::Fault(fault));
        }
        let mut retired: Vec<(WarpGeometry, P)> = Vec::new();
        let mut totals = SmStats::default();
        let mut per_sm_cycles = Vec::with_capacity(self.cfg.num_sms as usize);
        let mut per_sm = Vec::with_capacity(self.cfg.num_sms as usize);
        for sm in 0..self.cfg.num_sms {
            let block_ids: Vec<u32> = (sm..lc.grid_blocks)
                .step_by(self.cfg.num_sms as usize)
                .collect();
            let sm_stats = run_sm(
                &self.cfg,
                &mut self.global,
                &self.textures,
                &self.constants,
                &lc,
                &block_ids,
                &mut factory,
                &mut retired,
                sm,
                self.trace.as_deref_mut(),
                self.introspect.as_deref_mut(),
                self.attribution.as_deref_mut(),
            );
            per_sm_cycles.push(sm_stats.cycles);
            totals.merge(&sm_stats);
            per_sm.push(sm_stats);
        }
        retired.sort_by_key(|(g, _)| (g.block_id, g.warp_in_block));
        let mut cycles = per_sm_cycles.iter().copied().max().unwrap_or(0);
        if matches!(launch_fault, Some(LaunchFault::Hang(_))) {
            // The kernel "never returns": model it as an absurd completion
            // time. Without a watchdog the launch still completes (with
            // that time on the clock); with one it fails below.
            cycles += HANG_CYCLES;
        }
        if let Some(budget) = self.watchdog {
            if cycles > budget {
                return Err(DeviceError::Watchdog { cycles, budget });
            }
        }
        Ok(Launched {
            stats: LaunchStats {
                cycles,
                per_sm_cycles,
                per_sm,
                totals,
                blocks: lc.grid_blocks,
                warps: lc.grid_blocks * (lc.threads_per_block / self.cfg.warp_size),
                device_mem_high_water: self.alloc.stats().high_water_bytes,
            },
            programs: retired,
        })
    }
}

impl GlobalMemory {
    /// Consume into the raw byte vector (device resize helper).
    fn into_bytes(self) -> Vec<u8> {
        self.bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{StepOutcome, WarpCtx};

    /// A warp program that stages its lanes' global bytes into shared
    /// memory, synchronizes, reads them back, and writes lane+byte sums to
    /// an output region — touching every context facility once.
    struct RoundTrip {
        geom: WarpGeometry,
        in_base: u64,
        out_base: u64,
        phase: u32,
        bytes: Vec<u8>,
    }

    impl WarpProgram for RoundTrip {
        fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
            let n = self.geom.warp_size as usize;
            match self.phase {
                0 => {
                    let addrs: Vec<Option<u64>> = (0..n)
                        .map(|l| Some(self.in_base + self.geom.global_thread(l as u32)))
                        .collect();
                    self.bytes = vec![0; n];
                    ctx.global_read_u8(&addrs, &mut self.bytes);
                    self.phase = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let writes: Vec<Option<(u64, u32)>> = (0..n)
                        .map(|l| {
                            Some((
                                self.geom.block_thread(l as u32) as u64 * 4,
                                self.bytes[l] as u32,
                            ))
                        })
                        .collect();
                    ctx.shared_write_u32(&writes);
                    self.phase = 2;
                    StepOutcome::Continue
                }
                2 => {
                    self.phase = 3;
                    StepOutcome::Barrier
                }
                3 => {
                    let addrs: Vec<Option<u64>> = (0..n)
                        .map(|l| Some(self.geom.block_thread(l as u32) as u64 * 4))
                        .collect();
                    let mut back = vec![0u8; n];
                    ctx.shared_read_u8(&addrs, &mut back);
                    self.bytes = back;
                    self.phase = 4;
                    StepOutcome::Continue
                }
                4 => {
                    let writes: Vec<Option<(u64, u32)>> = (0..n)
                        .map(|l| {
                            Some((
                                self.out_base + self.geom.global_thread(l as u32) * 4,
                                self.bytes[l] as u32 + 1,
                            ))
                        })
                        .collect();
                    ctx.global_write_u32(&writes);
                    self.phase = 5;
                    StepOutcome::Finished
                }
                _ => unreachable!("stepped after Finished"),
            }
        }
    }

    #[test]
    fn end_to_end_roundtrip_kernel() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        let total_threads = 4 * 8; // 4 blocks × 8 threads (2 warps of 4)
        let in_base = dev.alloc_global(total_threads as u64).unwrap();
        let out_base = dev.alloc_global(total_threads as u64 * 4).unwrap();
        let input: Vec<u8> = (0..total_threads as u8).collect();
        dev.write_global(in_base, &input);

        let lc = LaunchConfig {
            grid_blocks: 4,
            threads_per_block: 8,
            shared_bytes_per_block: 64,
            resident_blocks_cap: None,
        };
        let launched = dev
            .launch(lc, |geom| RoundTrip {
                geom,
                in_base,
                out_base,
                phase: 0,
                bytes: Vec::new(),
            })
            .unwrap();

        assert!(launched.stats.cycles > 0);
        assert_eq!(launched.stats.blocks, 4);
        assert_eq!(launched.stats.warps, 8);
        assert_eq!(launched.programs.len(), 8);
        // Programs sorted by (block, warp).
        let order: Vec<(u32, u32)> = launched
            .programs
            .iter()
            .map(|(g, _)| (g.block_id, g.warp_in_block))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        // Output = input + 1, element-wise.
        for t in 0..total_threads as u64 {
            let got = u32::from_le_bytes(dev.read_global(out_base + t * 4, 4).try_into().unwrap());
            assert_eq!(got, t as u32 + 1, "thread {t}");
        }
        // Barriers: one per block.
        assert_eq!(launched.stats.totals.barriers, 4);
    }

    #[test]
    fn launch_validation() {
        let cfg = GpuConfig::tiny_test();
        let mut dev = GpuDevice::new(cfg).unwrap();
        let bad = LaunchConfig {
            grid_blocks: 0,
            threads_per_block: 8,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        assert!(dev.launch(bad, |_| Noop).is_err());
        let bad = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 3,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        assert!(bad.validate(&cfg).is_err());
        let bad = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 8,
            shared_bytes_per_block: 4096,
            resident_blocks_cap: None,
        };
        assert!(bad.validate(&cfg).is_err());
        let bad = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 4 * 8 * 100,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        assert!(bad.validate(&cfg).is_err());
    }

    #[derive(Debug)]
    struct Noop;
    impl WarpProgram for Noop {
        fn step(&mut self, _ctx: &mut WarpCtx<'_>) -> StepOutcome {
            StepOutcome::Finished
        }
    }

    #[test]
    fn occupancy_computation() {
        let cfg = GpuConfig::gtx285(); // 32 warps, 8 blocks, 16 KB shared
        let lc = LaunchConfig {
            grid_blocks: 100,
            threads_per_block: 128, // 4 warps
            shared_bytes_per_block: 8 * 1024,
            resident_blocks_cap: None,
        };
        // shared limits to 2 resident blocks.
        assert_eq!(lc.resident_blocks_per_sm(&cfg), 2);
        let lc0 = LaunchConfig {
            grid_blocks: 100,
            threads_per_block: 128,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        // warps limit: 32/4 = 8, block slots 8 → 8.
        assert_eq!(lc0.resident_blocks_per_sm(&cfg), 8);
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap(); // 1 MB
        let a = dev.alloc_global(512 * 1024).unwrap();
        assert_eq!(a, 0);
        let b = dev.alloc_global(256 * 1024).unwrap();
        assert!(b >= 512 * 1024);
        assert!(dev.alloc_global(512 * 1024).is_err());
    }

    #[test]
    fn global_write_read_roundtrip() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        let a = dev.alloc_global(16).unwrap();
        dev.write_global(a, &[1, 2, 3, 4]);
        assert_eq!(dev.read_global(a, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn texture_binding_counts_against_memory() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap(); // 1 MB
        let data = Arc::new(vec![0u32; 200_000]); // 800 KB
        dev.bind_texture_2d(data.clone(), 1000, 200).unwrap();
        assert!(dev.bind_texture_2d(data, 1000, 200).is_err());
    }

    #[test]
    fn injected_alloc_failure_is_transient() {
        use crate::fault::FaultPlan;
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        dev.arm_faults(FaultState::new(FaultPlan::none().with_alloc_fail(0)));
        let err = dev.alloc_global(64).unwrap_err();
        assert!(
            matches!(err, DeviceError::Fault(f) if f.kind == crate::fault::FaultKind::AllocFail)
        );
        // The retry is a new operation index and succeeds.
        assert!(dev.alloc_global(64).is_ok());
        let state = dev.disarm_faults().unwrap();
        assert_eq!(state.log().len(), 1);
        assert!(!dev.faults_armed());
    }

    #[test]
    fn injected_launch_transient_then_retry_succeeds() {
        use crate::fault::FaultPlan;
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        dev.arm_faults(FaultState::new(FaultPlan::none().with_launch_transient(0)));
        let lc = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        let err = dev.launch(lc, |_| Noop).unwrap_err();
        assert!(matches!(err, DeviceError::Fault(_)));
        assert!(dev.launch(lc, |_| Noop).is_ok());
    }

    #[test]
    fn hang_trips_watchdog_when_armed() {
        use crate::fault::FaultPlan;
        let lc = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        // Without a watchdog, the hang "completes" with an absurd time.
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        dev.arm_faults(FaultState::new(FaultPlan::none().with_kernel_hang(0)));
        let launched = dev.launch(lc, |_| Noop).unwrap();
        assert!(launched.stats.cycles >= HANG_CYCLES);
        // With one, the same hang is a typed watchdog error.
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        dev.arm_faults(FaultState::new(FaultPlan::none().with_kernel_hang(0)));
        dev.set_watchdog(Some(1_000_000));
        let err = dev.launch(lc, |_| Noop).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::Watchdog {
                budget: 1_000_000,
                ..
            }
        ));
    }

    #[test]
    fn dma_to_host_flips_only_when_scheduled() {
        use crate::fault::FaultPlan;
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        let mut buf = vec![0u8; 8];
        // Unarmed: no-op.
        assert!(dev.dma_to_host(&mut buf).is_none());
        assert_eq!(buf, vec![0u8; 8]);
        dev.arm_faults(FaultState::new(FaultPlan::none().with_readback_flip(0, 3)));
        assert!(dev.dma_to_host(&mut buf).is_some());
        assert_eq!(buf[0], 1 << 3);
    }

    #[test]
    fn oom_error_reports_requested_and_available() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap(); // 1 MB
        dev.alloc_global(1 << 19).unwrap();
        let err = dev.alloc_global(1 << 20).unwrap_err();
        match err {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
                capacity,
            } => {
                assert_eq!(requested, 1 << 20);
                assert_eq!(capacity, 1 << 20);
                assert_eq!(available, (1 << 20) - (1 << 19));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn free_global_recycles_capacity_and_tracks_stats() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap(); // 1 MB
        let a = dev.alloc_global(512 * 1024).unwrap();
        let b = dev.alloc_global(256 * 1024).unwrap();
        // The bump model is full past here; freeing `a` opens a hole that
        // a same-size allocation reuses.
        dev.free_global(a).unwrap();
        let c = dev.alloc_global(512 * 1024).unwrap();
        assert_eq!(c, a);
        // Freed contents are stale, not zeroed (like a real device).
        dev.write_global(c, &[9, 9, 9, 9]);
        dev.free_global(c).unwrap();
        let d = dev.alloc_global(16).unwrap();
        assert_eq!(d, c);
        assert_eq!(dev.read_global(d, 4), &[9, 9, 9, 9]);
        // Double free is a typed error.
        dev.free_global(b).unwrap();
        assert!(matches!(
            dev.free_global(b),
            Err(DeviceError::InvalidFree { .. })
        ));
        dev.free_global(d).unwrap();
        let s = dev.alloc_stats();
        assert_eq!(s.live_blocks, 0);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.allocs, 4);
        assert_eq!(s.frees, 4);
        assert_eq!(s.high_water_bytes, (512 + 256) * 1024);
    }

    #[test]
    fn launch_stats_carry_the_device_mem_high_water() {
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        dev.alloc_global(4096).unwrap();
        let lc = LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        let launched = dev.launch(lc, |_| Noop).unwrap();
        assert_eq!(launched.stats.device_mem_high_water, 4096);
    }

    #[test]
    fn more_blocks_than_slots_executes_all() {
        // 16 blocks on a 1-SM device with 2 block slots: blocks must cycle
        // through residency.
        let mut dev = GpuDevice::new(GpuConfig::tiny_test()).unwrap();
        let out = dev.alloc_global(16 * 4).unwrap();
        struct WriteOne {
            geom: WarpGeometry,
            out: u64,
        }
        impl WarpProgram for WriteOne {
            fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
                let mut writes = vec![None; self.geom.warp_size as usize];
                writes[0] = Some((self.out + self.geom.block_id as u64 * 4, self.geom.block_id));
                ctx.global_write_u32(&writes);
                StepOutcome::Finished
            }
        }
        let lc = LaunchConfig {
            grid_blocks: 16,
            threads_per_block: 4,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        };
        let launched = dev.launch(lc, |geom| WriteOne { geom, out }).unwrap();
        assert_eq!(launched.programs.len(), 16);
        for b in 0..16u64 {
            let got = u32::from_le_bytes(dev.read_global(out + b * 4, 4).try_into().unwrap());
            assert_eq!(got, b as u32);
        }
    }
}
