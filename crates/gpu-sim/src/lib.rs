//! # gpu-sim — a functional + timing simulator of a GT200-class GPU
//!
//! This crate is the hardware substrate for the reproduction of Tran et
//! al., *"High Throughput Parallel Implementation of Aho-Corasick Algorithm
//! on a GPU"* (IPPS 2013). The paper's results are driven entirely by the
//! GPU's memory hierarchy; this simulator implements those mechanisms
//! explicitly so the paper's effects *emerge* rather than being assumed:
//!
//! * **SIMT warps** ([`kernel`]) — kernels are warp-synchronous state
//!   machines stepped one instruction at a time, with per-lane active
//!   masks for divergence;
//! * **global-memory coalescing** ([`global`]) — per-half-warp grouping of
//!   lane addresses into 32/64/128-byte transactions (paper Fig. 9);
//! * **shared-memory banks** ([`shared`]) — 16 banks of 32-bit words with
//!   per-half-warp conflict serialization and the broadcast special case
//!   (paper Figs. 11–12);
//! * **texture cache** ([`texture`]) — per-SM set-associative cache over a
//!   tiled 2-D texture layout, in front of a bandwidth-limited DRAM
//!   channel (the paper's STT store);
//! * **warp scheduler** ([`scheduler`]) — round-robin issue with memory
//!   wake-ups, producing the latency-hiding and saturation regimes of
//!   paper Fig. 19;
//! * **device façade** ([`device`]) — allocation, host↔device copies,
//!   texture binding and kernel launches with CUDA-style occupancy limits;
//! * **streams** ([`stream`]) — in-order command queues overlapping
//!   copies with compute across the GT200's single DMA engine plus one
//!   compute engine, with events and a Chrome-trace timeline export.
//!
//! Timing is cycle-based and fully deterministic. Functional state (bytes
//! in global/shared memory, texels) is real, so kernels produce real
//! results that are checked against CPU oracles in the test suites.
//!
//! ```
//! use gpu_sim::{GpuConfig, GpuDevice, LaunchConfig, StepOutcome, WarpCtx, WarpProgram};
//!
//! // A kernel that reads one byte per thread.
//! struct ReadByte { base: u64, geom: gpu_sim::WarpGeometry }
//! impl WarpProgram for ReadByte {
//!     fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
//!         let n = self.geom.warp_size as usize;
//!         let addrs: Vec<Option<u64>> =
//!             (0..n).map(|l| Some(self.base + self.geom.global_thread(l as u32))).collect();
//!         let mut bytes = vec![0u8; n];
//!         ctx.global_read_u8(&addrs, &mut bytes);
//!         StepOutcome::Finished
//!     }
//! }
//!
//! let mut dev = GpuDevice::new(GpuConfig::gtx285()).unwrap();
//! let base = dev.alloc_global(256).unwrap();
//! dev.write_global(base, &[7u8; 256]);
//! let lc = LaunchConfig { grid_blocks: 2, threads_per_block: 128, shared_bytes_per_block: 0, resident_blocks_cap: None };
//! let launched = dev.launch(lc, |geom| ReadByte { base, geom }).unwrap();
//! assert!(launched.stats.cycles > 0);
//! ```

pub mod alloc;
pub mod attrib;
pub mod bus;
pub mod config;
pub mod constant;
pub mod device;
pub mod error;
pub mod fault;
pub mod global;
pub mod hostmem;
pub mod introspect;
pub mod kernel;
pub mod scheduler;
pub mod shared;
pub mod stats;
pub mod stream;
pub mod texture;

pub use alloc::{AllocStats, DeviceAllocator, ALLOC_ALIGN, ALLOC_CYCLES, FREE_CYCLES};
pub use attrib::{Attribution, AttributionConfig, LaneAttr, SmAttribution};
pub use bus::{BusConfig, BusStats, PcieBusArbiter};
pub use config::GpuConfig;
pub use constant::{ConstId, ConstantBuffer};
pub use device::{GpuDevice, LaunchConfig, Launched};
pub use error::{DeviceError, GpuConfigError, LaunchError};
pub use fault::{FaultKind, FaultPlan, FaultState, InjectedFault, HANG_CYCLES};
pub use global::GlobalMemory;
pub use hostmem::{HostMemory, PAGEABLE_STAGING_BYTES_PER_SEC};
pub use introspect::{IntrospectConfig, Introspection, SmIntrospection};
pub use kernel::{StepOutcome, WarpCtx, WarpGeometry, WarpProgram};
pub use shared::SharedMemory;
pub use stats::{LaunchStats, LoadImbalance, SmStats};
pub use stream::{
    device_pid_base, EngineKind, EventId, ScheduledOp, StreamEngine, StreamOpKind, StreamTimeline,
    DEVICE_PID_STRIDE, PID_STREAM_BASE,
};
pub use texture::{TexId, Texture2d};

pub use mem_sim::{BankHistogram, BusyInterval, CacheStats, Cycle, SetStats};
pub use trace::{StallBreakdown, StallReason, TraceBuffer, TraceConfig};
