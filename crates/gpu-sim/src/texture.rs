//! Texture memory: read-only 2-D images of 32-bit texels with tiled
//! addressing, cached per SM.
//!
//! The paper stores the STT in texture memory because "the texture cache is
//! optimized for 2-dimensional spatial local data" (§IV.B.2). Real GPUs
//! achieve that 2-D locality by storing textures in a *tiled* (block
//! linear) layout so that a cache line covers a small 2-D neighbourhood
//! rather than a 1-D run. We model a `tile_w × tile_h` texel tiling: the
//! address of texel `(row, col)` interleaves tile coordinates, and the
//! per-SM cache (from `mem-sim`) caches those tiled addresses.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Texels per tile row. 8 texels × 4 bytes = 32 bytes = one cache line —
/// the small sector size of the GT200 texture hierarchy (fine lines keep
/// fill traffic proportional to what the kernel actually touches, which
/// is what lets the real hardware tolerate very large STTs).
pub const TILE_W: u64 = 8;
/// Rows per tile. 4 rows × 32 bytes = 128-byte tiles: a line fill pulls in
/// one row-segment; neighbouring rows of the same tile land in nearby sets.
pub const TILE_H: u64 = 4;

/// Identifier of a texture bound to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TexId(pub usize);

/// A read-only 2-D texture of `u32` texels.
///
/// Data is shared via `Arc` so binding a 250 MB STT to the device does not
/// copy it — mirroring how the paper binds the host-built STT once.
#[derive(Debug, Clone)]
pub struct Texture2d {
    data: Arc<Vec<u32>>,
    rows: u32,
    cols: u32,
    /// Row stride in texels of the tiled layout (cols rounded to tiles).
    tiled_cols: u64,
}

impl Texture2d {
    /// Wrap row-major `data` (`rows × cols` texels) as a texture.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` — a size mismatch is a host
    /// programming error equivalent to a bad `cudaBindTexture2D` call.
    pub fn new(data: Arc<Vec<u32>>, rows: u32, cols: u32) -> Self {
        assert_eq!(
            data.len(),
            rows as usize * cols as usize,
            "texture data length must equal rows*cols"
        );
        let tiled_cols = (cols as u64).div_ceil(TILE_W) * TILE_W;
        Texture2d {
            data,
            rows,
            cols,
            tiled_cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Functional fetch of texel `(row, col)` (the data itself is row-major;
    /// tiling only affects *addresses*, i.e. timing).
    #[inline]
    pub fn fetch(&self, row: u32, col: u32) -> u32 {
        debug_assert!(
            row < self.rows && col < self.cols,
            "texture fetch out of bounds"
        );
        self.data[row as usize * self.cols as usize + col as usize]
    }

    /// Tiled byte address of texel `(row, col)`, fed to the texture cache.
    ///
    /// Layout: tiles are stored row-of-tiles major; inside a tile, texels
    /// are row-major. A 64-byte cache line therefore holds one `TILE_W`
    /// texel row-segment, and the `TILE_H` segments of a tile occupy
    /// consecutive lines — 2-D spatial locality in both directions.
    #[inline]
    pub fn tiled_addr(&self, row: u32, col: u32) -> u64 {
        let (r, c) = (row as u64, col as u64);
        let tiles_per_row = self.tiled_cols / TILE_W;
        let tile_index = (r / TILE_H) * tiles_per_row + c / TILE_W;
        let within = (r % TILE_H) * TILE_W + (c % TILE_W);
        (tile_index * (TILE_W * TILE_H) + within) * 4
    }

    /// Total size in bytes (texels only; padding tiles are address space,
    /// not storage).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Invert [`Texture2d::tiled_addr`]: the texture row holding the texel
    /// at tiled byte address `addr`, or `None` when the address falls in
    /// column padding or past the last row.
    ///
    /// Because one 32-byte cache line is exactly one `TILE_W` row-segment,
    /// every address of a line maps to the *same* row — which is what lets
    /// an introspector turn texture-cache residency into "which STT states
    /// are resident" (the STT binds state `s` as texture row `s`).
    pub fn row_of_tiled_addr(&self, addr: u64) -> Option<u32> {
        let texel = addr / 4;
        let tile_texels = TILE_W * TILE_H;
        let tiles_per_row = self.tiled_cols / TILE_W;
        let tile = texel / tile_texels;
        let within = texel % tile_texels;
        let row = (tile / tiles_per_row) * TILE_H + within / TILE_W;
        let col = (tile % tiles_per_row) * TILE_W + within % TILE_W;
        (row < self.rows as u64 && col < self.cols as u64).then_some(row as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::{Cache, CacheConfig};

    fn tex(rows: u32, cols: u32) -> Texture2d {
        let data: Vec<u32> = (0..rows * cols).collect();
        Texture2d::new(Arc::new(data), rows, cols)
    }

    #[test]
    fn fetch_is_row_major() {
        let t = tex(4, 8);
        assert_eq!(t.fetch(0, 0), 0);
        assert_eq!(t.fetch(1, 0), 8);
        assert_eq!(t.fetch(3, 7), 31);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 8);
        assert_eq!(t.size_bytes(), 4 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn size_mismatch_rejected() {
        Texture2d::new(Arc::new(vec![0; 5]), 2, 4);
    }

    #[test]
    fn tiled_addresses_are_unique() {
        let t = tex(32, 40);
        let mut seen = std::collections::HashSet::new();
        for r in 0..32 {
            for c in 0..40 {
                assert!(
                    seen.insert(t.tiled_addr(r, c)),
                    "duplicate address at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn row_segment_shares_a_line() {
        // Texels (r, 0..16) must share one 64-byte line.
        let t = tex(8, 64);
        let base = t.tiled_addr(2, 0);
        for c in 1..TILE_W as u32 {
            assert_eq!(t.tiled_addr(2, c) / 32, base / 32);
        }
        // The next row-segment is in the next tile → different line.
        assert_ne!(t.tiled_addr(2, TILE_W as u32) / 32, base / 32);
    }

    #[test]
    fn vertical_neighbours_share_a_tile() {
        // Rows 0..TILE_H of column 0 stay within one 256-byte tile.
        let t = tex(16, 64);
        let tile_bytes = TILE_W * TILE_H * 4;
        let tile = t.tiled_addr(0, 0) / tile_bytes;
        for r in 1..TILE_H as u32 {
            assert_eq!(t.tiled_addr(r, 0) / tile_bytes, tile);
        }
        assert_ne!(t.tiled_addr(TILE_H as u32, 0) / tile_bytes, tile);
    }

    #[test]
    fn row_of_tiled_addr_inverts_tiled_addr() {
        // Cols not a multiple of TILE_W exercises padding-tile addresses.
        let t = tex(37, 21);
        for r in 0..37 {
            for c in 0..21 {
                assert_eq!(
                    t.row_of_tiled_addr(t.tiled_addr(r, c)),
                    Some(r),
                    "({r},{c})"
                );
            }
        }
        // Column padding of the last tile (cols 21..24 of row 0) and
        // addresses past the texture are unmapped.
        assert_eq!(t.row_of_tiled_addr(t.tiled_addr(0, 20) + 4 * 3), None);
        assert_eq!(t.row_of_tiled_addr(1 << 40), None);
    }

    #[test]
    fn every_address_of_a_line_maps_to_one_row() {
        // A 32-byte line is one TILE_W row-segment, so the line base
        // address answers for every texel in the line — the invariant the
        // residency heatmap depends on.
        let t = tex(64, 257);
        for r in (0..64).step_by(7) {
            for c in (0..257).step_by(11) {
                let addr = t.tiled_addr(r, c);
                let line_base = addr & !31;
                assert_eq!(t.row_of_tiled_addr(line_base), Some(r), "({r},{c})");
            }
        }
    }

    #[test]
    fn tiling_beats_linear_for_2d_walks() {
        // A 2-D random-ish walk over a tall table: tiled addressing should
        // produce a hit rate at least as good as what linear row-major
        // addressing would get from a small cache, because vertical
        // neighbours share tiles. This is the texture cache's raison
        // d'être in the paper.
        let t = tex(256, 257);
        let mk_cache = || {
            Cache::new(CacheConfig {
                size_bytes: 2048,
                line_bytes: 32,
                associativity: 4,
            })
        };
        let mut tiled = mk_cache();
        let mut linear = mk_cache();
        // Walk: small vertical meander in a few hot columns (like AC
        // revisiting shallow states).
        let mut hits_t = 0;
        let mut hits_l = 0;
        let mut accesses = 0;
        for step in 0..20_000u64 {
            let row = ((step * 7) % 16) as u32; // hot shallow rows
            let col = ((step * 13) % 32) as u32;
            accesses += 1;
            if tiled.access(t.tiled_addr(row, col)).is_hit() {
                hits_t += 1;
            }
            let lin_addr = (row as u64 * 257 + col as u64) * 4;
            if linear.access(lin_addr).is_hit() {
                hits_l += 1;
            }
        }
        assert!(accesses > 0);
        assert!(hits_t >= hits_l, "tiled {hits_t} < linear {hits_l}");
    }
}
