//! Vendored offline stand-in for `serde_json`.
//!
//! A complete (if small) JSON printer and recursive-descent parser over
//! the shim `serde::Value` data model. Unlike the other shims this one is
//! fully functional — round-trip tests and the committed `figures.json`
//! baselines depend on real JSON behavior.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => write_seq(
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            out,
            |item, d, o| write_value(item, indent, d, o),
        ),
        Value::Obj(fields) => write_seq(
            fields.iter(),
            fields.len(),
            '{',
            '}',
            indent,
            depth,
            out,
            |(k, val), d, o| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        // Keep a decimal point so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_lit("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so the
                    // bytes are valid UTF-8 by construction.
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits (after `\u`); leaves pos past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let v: Vec<(String, f64)> = from_str(r#"[["a",1.5],["b\n\"q\"",2.0]]"#).unwrap();
        assert_eq!(v, vec![("a".into(), 1.5), ("b\n\"q\"".into(), 2.0)]);
        let s = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_shape() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_their_floatness() {
        let s = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(s, "[1.0]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1.0]);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(s, "A😀");
    }
}
