//! Vendored offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace ships a
//! minimal serde replacement with a simplified data model: types convert
//! to and from a JSON-like [`Value`] tree instead of driving a streaming
//! `Serializer`/`Deserializer`. `shims/serde_json` renders and parses the
//! tree. The API surface intentionally covers only what this repository
//! uses; the `derive` feature is accepted (and ignored — the derives are
//! always re-exported).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model shared by the serde/serde_json shims.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object as an insertion-ordered association list (field order is
    /// preserved so serialized output matches declaration order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_i128(&self) -> Option<i128> {
        match self {
            Value::I64(n) => Some(*n as i128),
            Value::U64(n) => Some(*n as i128),
            Value::F64(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
            _ => None,
        }
    }
}

/// Field lookup used by the generated `Deserialize` impls.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    pub fn missing(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the shim [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the shim [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitives ------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i128().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i128().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("single-char string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", "tuple")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}
