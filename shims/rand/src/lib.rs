//! Vendored offline stand-in for `rand` 0.9.
//!
//! Provides the slice of the rand API this repository uses —
//! `StdRng::seed_from_u64`, `Rng::random_range` over `Range`/
//! `RangeInclusive`, and `Rng::random_bool` — backed by SplitMix64.
//! Streams are deterministic per seed (which the corpus generators rely
//! on) but do NOT match upstream rand's streams.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore + Sized {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Map a random u64 to [0, 1) with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator (stands in for upstream's ChaCha12-based StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=255u8);
            let _ = w; // full domain, just must not panic
            let f = rng.random_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&f));
            let s = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
