//! Vendored offline stand-in for `criterion`.
//!
//! Keeps the bench targets compiling and runnable without crates.io
//! access. Each benchmark closure is timed over a handful of iterations
//! and a one-line wall-time summary is printed — enough to eyeball
//! regressions, with none of criterion's statistics. Pass `--quick-check`
//! (or run under `cargo test`, which passes `--test`) to only execute
//! each closure once as a smoke check.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

#[derive(Default)]
pub struct Criterion {
    smoke_only: bool,
}

impl Criterion {
    fn from_args() -> Self {
        let smoke_only = std::env::args().any(|a| a == "--test" || a == "--quick-check");
        Criterion { smoke_only }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.name, None, self.smoke_only, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.throughput, self.parent.smoke_only, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.throughput,
            self.parent.smoke_only,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    smoke_only: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let iters = if smoke_only { 1 } else { 3 };
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if smoke_only {
        eprintln!("bench {label}: ok (smoke)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / per_iter / 1e9;
            eprintln!(
                "bench {label}: {:.3} ms/iter, {gbps:.3} GB/s",
                per_iter * 1e3
            );
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / per_iter;
            eprintln!(
                "bench {label}: {:.3} ms/iter, {eps:.0} elem/s",
                per_iter * 1e3
            );
        }
        None => eprintln!("bench {label}: {:.3} ms/iter", per_iter * 1e3),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::__new_from_args();
            $( $group(&mut c); )+
        }
    };
}

impl Criterion {
    /// Used by `criterion_main!`; not part of the real criterion API.
    #[doc(hidden)]
    pub fn __new_from_args() -> Self {
        Criterion::from_args()
    }
}
