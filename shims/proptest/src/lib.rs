//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this repository uses: the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros, integer-range and
//! tuple strategies, `collection::vec`, `sample::select`, `any::<T>()`,
//! and regex-like string strategies of the shape `"[chars]{m,n}"`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test PRNG (seeded from the test path), there is no shrinking, and
//! failures report the case index plus the formatted inputs instead of a
//! persisted seed file. Default case count is 64.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64 over an FNV-1a seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's module path + name and the case index, so every
    /// test gets an independent, reproducible stream.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as u64
    }
}

/// Per-block configuration; only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error carried out of a failing `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of values (no shrinking in the shim).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// --- integer / float range strategies --------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- any::<T>() ------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples of strategies ---------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

// --- string strategies ------------------------------------------------------

/// `&str` strategies interpret a small regex subset: a sequence of atoms,
/// each a literal char or `[class]`, with optional `{m}`, `{m,n}`, `?`,
/// `*`, or `+` quantifiers (the unbounded ones cap at 8 repeats).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let inner = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(inner, pat)
            }
            '\\' => {
                i += 2;
                vec![*chars
                    .get(i - 1)
                    .unwrap_or_else(|| panic!("trailing \\ in {pat:?}"))]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("bad {m,n}"),
                        n.trim().parse::<u64>().expect("bad {m,n}"),
                    ),
                    None => {
                        let m = body.trim().parse::<u64>().expect("bad {m}");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let n = rng.below(lo, hi);
        for _ in 0..n {
            out.push(class[rng.below(0, class.len() as u64 - 1) as usize]);
        }
    }
    out
}

fn expand_class(inner: &[char], pat: &str) -> Vec<char> {
    let mut class = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            let (a, b) = (inner[j], inner[j + 2]);
            assert!(a <= b, "bad class range in {pat:?}");
            for c in a..=b {
                class.push(c);
            }
            j += 3;
        } else {
            class.push(inner[j]);
            j += 1;
        }
    }
    assert!(!class.is_empty(), "empty class in {pat:?}");
    class
}

// --- collections ------------------------------------------------------------

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        lo: u64,
        hi: u64,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.lo, self.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Size argument for `collection::vec` — `m..n`, `m..=n`, or a fixed count.
pub trait SizeRange {
    /// Inclusive (lo, hi) element-count bounds.
    fn bounds(&self) -> (u64, u64);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (u64, u64) {
        assert!(self.start < self.end, "empty size range");
        (self.start as u64, self.end as u64 - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (u64, u64) {
        (*self.start() as u64, *self.end() as u64)
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (u64, u64) {
        (*self as u64, *self as u64)
    }
}

// --- sample -----------------------------------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        choices: Vec<T>,
    }

    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(0, self.choices.len() as u64 - 1) as usize].clone()
        }
    }
}

// --- prelude ----------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// --- macros -----------------------------------------------------------------

/// The test-block macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions of the
/// form `fn name(arg in strategy, ...) { body }` (attributes such as
/// `#[test]` and doc comments pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__path, __case as u64);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                // Render inputs before the body can move them.
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::for_case("shape", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[abc]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.len()));
            assert!(s.bytes().all(|b| matches!(b, b'a' | b'b' | b'c')));
            let t = crate::Strategy::generate(&"[a-d]{0,3}x", &mut rng);
            assert!(t.ends_with('x') && t.len() <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |case| {
            let mut rng = crate::TestRng::for_case("det", case);
            crate::Strategy::generate(&crate::collection::vec(any::<u8>(), 1..10), &mut rng)
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4)); // overwhelmingly likely distinct
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_everything(
            xs in crate::collection::vec((0u64..100, crate::sample::select(vec![1u32, 4])), 1..8),
            s in "[ab]{0,10}",
        ) {
            prop_assert!(!xs.is_empty());
            for (a, b) in &xs {
                prop_assert!(*a < 100, "a = {}", a);
                prop_assert!(matches!(b, 1 | 4));
            }
            prop_assert_eq!(s.len(), s.len());
            prop_assert_ne!(s.len(), 11);
        }
    }
}
