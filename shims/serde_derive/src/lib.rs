//! Vendored offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal derive that targets the simplified data
//! model in `shims/serde` (`to_value`/`from_value` over a JSON-like
//! `Value`). It parses the item's token stream by hand — no `syn`/`quote`
//! — and supports exactly the shapes this repository uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` per field)
//! * tuple structs (newtype or wider)
//! * enums whose variants are all unit variants
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` so unsupported usage fails loudly at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

struct Field {
    name: String,
    /// `#[serde(default)]` was present on the field.
    default: bool,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected item name".into()),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic item `{name}` is unsupported"
        ));
    }
    match kind.as_str() {
        "struct" => match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            _ => Err(format!(
                "serde shim derive: unsupported struct body for `{name}`"
            )),
        },
        "enum" => match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(g.stream(), &name)?,
            }),
            _ => Err(format!(
                "serde shim derive: expected enum body for `{name}`"
            )),
        },
        _ => Err("serde shim derive: expected `struct` or `enum`".into()),
    }
}

/// Skip outer `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Does an attribute group's stream spell `serde(default)`?
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == "default")),
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = false;
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                default |= attr_is_serde_default(g.stream());
            }
            i += 2;
        }
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected field name, got `{other}`"
                ))
            }
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ))
            }
        }
        // Skim the type: skip token trees until a comma at angle-bracket
        // depth zero (commas inside `<...>` belong to generic arguments;
        // commas inside `(...)` are hidden inside a single Group tree).
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected variant name, got `{other}`"
                ))
            }
        };
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "serde shim derive: enum `{enum_name}` has data-carrying variant `{name}`, \
                 only unit variants are supported"
            ));
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::DeError::missing({:?}, {:?}))",
                            f.name, name
                        )
                    };
                    format!(
                        "{n}: match ::serde::obj_get(__obj, {n:?}) {{\n\
                             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                     if __arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::expected(\"array of length {arity}\", {name:?}));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __s = __v.as_str().ok_or_else(|| ::serde::DeError::expected(\"string\", {name:?}))?;\n\
                         match __s {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
