//! Cross-implementation equivalence: every matcher in the workspace —
//! serial DFA, streaming, chunked, multithreaded CPU, PFAC, compressed
//! STT, and all five GPU kernels — reports exactly the same matches.

use ac_core::chunked::{match_all_chunks, ChunkPlan};
use ac_core::{naive, AcAutomaton, CompressedStt, Match, PatternSet, PfacAutomaton, StreamMatcher};
use ac_cpu::{par_find_all, ParallelConfig};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::{extract_patterns, ExtractConfig, TextGenerator};
use gpu_sim::GpuConfig;
use proptest::prelude::*;

fn workload() -> (Vec<u8>, PatternSet) {
    let text = TextGenerator::new(400).generate(48 * 1024);
    let source = TextGenerator::new(401).generate(96 * 1024);
    let ps = extract_patterns(&source, &ExtractConfig::paper_default(150, 402));
    (text, ps)
}

fn sorted(mut v: Vec<Match>) -> Vec<Match> {
    v.sort();
    v
}

#[test]
fn seven_implementations_agree() {
    let (text, ps) = workload();
    let ac = AcAutomaton::build(&ps);
    let reference = sorted(ac.find_all(&text));
    assert!(!reference.is_empty());

    // 1. Streaming in odd-sized pieces.
    let mut stream = StreamMatcher::new(&ac);
    let mut got = Vec::new();
    for chunk in text.chunks(777) {
        stream.feed(chunk, &mut got);
    }
    assert_eq!(sorted(got), reference, "streaming");

    // 2. Chunked with minimal overlap.
    let plan = ChunkPlan::for_automaton(text.len(), 1000, &ac).unwrap();
    assert_eq!(match_all_chunks(&ac, &text, &plan), reference, "chunked");

    // 3. Multithreaded CPU.
    let par = par_find_all(
        &ac,
        &text,
        &ParallelConfig {
            threads: 3,
            chunk_size: 4096,
        },
    )
    .unwrap();
    assert_eq!(par, reference, "crossbeam parallel");

    // 4. PFAC.
    let pfac = PfacAutomaton::build(&ps);
    assert_eq!(pfac.find_all(&text), reference, "pfac");

    // 5. Compressed STT walk (via a hand-rolled matcher).
    let compressed = CompressedStt::from_stt(ac.stt());
    let mut got = Vec::new();
    let mut state = 0u32;
    for (i, &b) in text.iter().enumerate() {
        state = compressed.next(state, b);
        if compressed.is_match(state) {
            ac.expand_outputs(state, i + 1, &mut got);
        }
    }
    assert_eq!(sorted(got), reference, "compressed STT");

    // 6–7. All GPU kernels.
    let cfg = GpuConfig::gtx285();
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    for approach in Approach::all() {
        let run = m.run(&text, approach).unwrap();
        assert_eq!(run.matches, reference, "{approach:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized miniature of the same equivalence, small enough to run
    /// many cases: random patterns and text over a 3-letter alphabet, GPU
    /// shared kernel vs brute force.
    #[test]
    fn gpu_equals_brute_force_random(
        pats in proptest::collection::vec("[abc]{1,6}", 1..8),
        text in "[abc]{0,400}",
    ) {
        let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
        let ps = PatternSet::from_strs(&refs).unwrap();
        let want = naive::find_all(&ps, text.as_bytes());
        let cfg = GpuConfig::gtx285();
        let m = GpuAcMatcher::new(
            cfg,
            KernelParams { threads_per_block: 32, global_chunk_bytes: 64, shared_chunk_bytes: 64 },
            AcAutomaton::build(&ps),
        ).unwrap();
        for approach in [
            Approach::SharedDiagonal,
            Approach::GlobalOnly,
            Approach::Pfac,
            Approach::SharedCompressed,
        ] {
            let run = m.run(text.as_bytes(), approach).unwrap();
            prop_assert_eq!(&run.matches, &want, "{:?}", approach);
        }
    }
}
