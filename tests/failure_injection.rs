//! Failure injection: invalid configurations must produce errors, never
//! panics or silent wrong answers, across every public API boundary.

use ac_core::{AcError, ChunkPlan, PatternSet};
use ac_cpu::{par_find_all, ParallelConfig};
use ac_gpu::{
    run_supervised, Approach, ErrorClass, GpuAcMatcher, GpuError, KernelParams, SuperviseConfig,
};
use gpu_sim::{DeviceError, FaultPlan, GpuConfig, GpuDevice, LaunchConfig};

#[test]
fn pattern_set_rejects_degenerate_input() {
    assert_eq!(
        PatternSet::new(std::iter::empty::<&[u8]>()).unwrap_err(),
        AcError::EmptyPatternSet
    );
    assert_eq!(
        PatternSet::from_strs(&["ok", ""]).unwrap_err(),
        AcError::EmptyPattern { index: 1 }
    );
}

#[test]
fn chunk_plan_rejects_unsafe_geometry() {
    assert_eq!(
        ChunkPlan::new(100, 0, 5, 5).unwrap_err(),
        AcError::ZeroChunkSize
    );
    assert_eq!(
        ChunkPlan::new(100, 10, 2, 9).unwrap_err(),
        AcError::OverlapTooSmall {
            requested: 2,
            required: 9
        }
    );
}

#[test]
fn parallel_matcher_rejects_zero_workers() {
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["x"]).unwrap());
    assert!(par_find_all(
        &ac,
        b"xx",
        &ParallelConfig {
            threads: 0,
            chunk_size: 4
        }
    )
    .is_err());
}

type Mutation = Box<dyn Fn(&mut GpuConfig)>;

#[test]
fn gpu_config_validation_is_exhaustive() {
    let base = GpuConfig::gtx285();
    let mutations: Vec<(&str, Mutation)> = vec![
        ("zero sms", Box::new(|c| c.num_sms = 0)),
        ("odd warp", Box::new(|c| c.warp_size = 7)),
        ("warp too big", Box::new(|c| c.warp_size = 64)),
        ("zero banks", Box::new(|c| c.shared_banks = 0)),
        ("zero blocks", Box::new(|c| c.max_blocks_per_sm = 0)),
        ("bad segment", Box::new(|c| c.coalesce_segment = 96)),
        ("zero clock", Box::new(|c| c.clock_hz = 0.0)),
        ("zero device mem", Box::new(|c| c.device_mem_bytes = 0)),
        ("zero tex rate", Box::new(|c| c.tex_lanes_per_cycle = 0.0)),
        ("bad l1 line", Box::new(|c| c.tex_cache.line_bytes = 48)),
        (
            "mismatched l2 line",
            Box::new(|c| c.tex_l2.line_bytes = 128),
        ),
        ("zero dram bw", Box::new(|c| c.dram.bytes_per_cycle = 0.0)),
    ];
    for (what, mutate) in mutations {
        let mut cfg = base;
        mutate(&mut cfg);
        assert!(cfg.validate().is_err(), "{what} should be rejected");
        assert!(
            GpuDevice::new(cfg).is_err(),
            "{what} should fail device bring-up"
        );
    }
    assert!(base.validate().is_ok());
}

#[test]
fn launch_validation_rejects_bad_geometry() {
    let cfg = GpuConfig::gtx285();
    let cases = [
        LaunchConfig {
            grid_blocks: 0,
            threads_per_block: 128,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        },
        LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 33,
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        },
        LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 32 * 64, // 64 warps > 32 per SM
            shared_bytes_per_block: 0,
            resident_blocks_cap: None,
        },
        LaunchConfig {
            grid_blocks: 1,
            threads_per_block: 128,
            shared_bytes_per_block: 17 * 1024, // > 16 KB
            resident_blocks_cap: None,
        },
    ];
    for lc in cases {
        assert!(lc.validate(&cfg).is_err(), "{lc:?} should be rejected");
    }
}

#[test]
fn kernel_params_rejected_before_any_launch() {
    let cfg = GpuConfig::gtx285();
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["abc"]).unwrap());
    let bad = [
        KernelParams {
            threads_per_block: 0,
            global_chunk_bytes: 64,
            shared_chunk_bytes: 64,
        },
        KernelParams {
            threads_per_block: 48,
            global_chunk_bytes: 64,
            shared_chunk_bytes: 64,
        },
        KernelParams {
            threads_per_block: 32,
            global_chunk_bytes: 0,
            shared_chunk_bytes: 64,
        },
        KernelParams {
            threads_per_block: 32,
            global_chunk_bytes: 64,
            shared_chunk_bytes: 62,
        },
        KernelParams {
            threads_per_block: 32,
            global_chunk_bytes: 64,
            shared_chunk_bytes: 32,
        },
        KernelParams {
            threads_per_block: 256,
            global_chunk_bytes: 64,
            shared_chunk_bytes: 512,
        },
    ];
    for params in bad {
        assert!(
            GpuAcMatcher::new(cfg, params, ac.clone()).is_err(),
            "{params:?} should be rejected"
        );
    }
}

#[test]
fn device_memory_exhaustion_is_an_error_not_a_panic() {
    let mut cfg = GpuConfig::gtx285();
    cfg.device_mem_bytes = 1024 * 1024; // 1 MB device
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["abc"]).unwrap());
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    // 4 MB of input cannot fit on a 1 MB device.
    let big = vec![0u8; 4 * 1024 * 1024];
    let err = m.run(&big, Approach::SharedDiagonal).unwrap_err();
    assert!(
        err.to_string().contains("out of device memory"),
        "unexpected error: {err}"
    );
    // The typed error carries the arithmetic, not just prose.
    match err {
        GpuError::Device(DeviceError::OutOfDeviceMemory {
            requested,
            available,
            capacity,
        }) => {
            assert_eq!(requested, 4 * 1024 * 1024 + 4); // input + guard bytes
            assert_eq!(capacity, 1024 * 1024);
            assert!(available <= capacity);
        }
        other => panic!("expected a typed OOM, got {other:?}"),
    }
    assert_eq!(err.class(), ErrorClass::Fatal, "OOM must not be retried");
}

#[test]
fn transient_faults_are_retried_with_observable_count() {
    let cfg = GpuConfig::gtx285();
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["he", "hers"]).unwrap());
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    // First two launches fail transiently; the third succeeds.
    m.set_fault_plan(
        FaultPlan::none()
            .with_launch_transient(0)
            .with_launch_transient(1),
    );
    let s = run_supervised(
        &m,
        b"ushers",
        Approach::SharedDiagonal,
        &SuperviseConfig::default(),
    )
    .unwrap();
    assert_eq!(s.report.attempts, 3);
    assert_eq!(s.report.retries, 2);
    assert_eq!(s.report.faults.len(), 2);
    assert_eq!(s.run.matches.len(), 2); // he, hers
                                        // Unsupervised runs surface the same fault as a typed, retryable error.
    m.set_fault_plan(FaultPlan::none().with_launch_transient(0));
    let err = m.run(b"ushers", Approach::SharedDiagonal).unwrap_err();
    assert_eq!(err.class(), ErrorClass::Transient);
    assert!(err.is_retryable());
}

#[test]
fn fatal_faults_surface_as_typed_errors_without_retry() {
    let cfg = GpuConfig::gtx285();
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["he"]).unwrap());
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    // Exhaust every allocation slot the plan could use: alloc faults are
    // modeled transient, so supervision retries then gives up — but the
    // error stays typed the whole way.
    let plan = (0..64).fold(FaultPlan::none(), |p, i| p.with_alloc_fail(i));
    m.set_fault_plan(plan);
    let scfg = SuperviseConfig {
        max_retries: 2,
        ..SuperviseConfig::default()
    };
    let (err, report) = run_supervised(&m, b"hehe", Approach::SharedDiagonal, &scfg).unwrap_err();
    assert!(matches!(err, GpuError::Device(DeviceError::Fault(_))));
    assert_eq!(report.attempts, 3, "budget of 2 retries = 3 attempts");
}

#[test]
fn corrupted_readback_is_detected_never_silently_wrong() {
    let cfg = GpuConfig::gtx285();
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["he", "she"]).unwrap());
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    let text = b"she sells seashells";
    let clean = m.run(text, Approach::SharedDiagonal).unwrap().matches;
    // Sweep bit offsets: every scheduled flip must either be detected as
    // corruption or (never) alter the matches.
    for bit in [0u64, 13, 101, 997, 65_535] {
        m.set_fault_plan(FaultPlan::none().with_readback_flip(0, bit));
        match m.run(text, Approach::SharedDiagonal) {
            Err(GpuError::Corrupted(_)) => {} // detected, as required
            Err(other) => panic!("bit {bit}: wrong error kind {other:?}"),
            Ok(run) => panic!(
                "bit {bit}: corruption went undetected (got {} matches vs {} clean)",
                run.matches.len(),
                clean.len()
            ),
        }
        // Supervision discards the corrupt attempt and recovers.
        m.set_fault_plan(FaultPlan::none().with_readback_flip(0, bit));
        let s = run_supervised(
            &m,
            text,
            Approach::SharedDiagonal,
            &SuperviseConfig::default(),
        )
        .unwrap();
        assert_eq!(s.run.matches, clean, "bit {bit}");
        assert_eq!(s.report.attempts, 2, "bit {bit}");
        m.clear_fault_plan();
    }
}

#[test]
fn watchdog_kills_hung_kernels() {
    let cfg = GpuConfig::gtx285();
    let ac = ac_core::AcAutomaton::build(&PatternSet::from_strs(&["he"]).unwrap());
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    m.set_fault_plan(FaultPlan::none().with_kernel_hang(0));
    let err = m
        .run_opts(
            b"hehe",
            Approach::SharedDiagonal,
            ac_gpu::RunOptions {
                record: true,
                watchdog_cycles: Some(1 << 30),
                trace: None,
                introspect: None,
                attribution: None,
            },
        )
        .unwrap_err();
    match err {
        GpuError::Device(DeviceError::Watchdog { cycles, budget }) => {
            assert!(cycles > budget);
            assert_eq!(budget, 1 << 30);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn oversized_automaton_rejected_by_capacity_checks() {
    // A pattern set whose total bytes exceed u32 is rejected up front
    // (simulate with the capacity error path on pattern bytes).
    let huge = vec![0u8; 16];
    let many: Vec<&[u8]> = (0..4).map(|_| huge.as_slice()).collect();
    // This small set is fine — the guard is exercised by unit tests; here
    // we just pin that valid input still passes after the checks.
    assert!(PatternSet::new(many).is_ok());
}
