//! Fleet sharding exactness: splitting a corpus into overlap-padded
//! per-device segments and merging the demuxed matches must reproduce a
//! single-device scan *exactly* — every match found once, none lost at a
//! shard boundary, none duplicated in the overlap. Pinned by proptest
//! over randomized pattern sets, texts and shard counts, plus structural
//! properties of the plan itself (full coverage, exact
//! `required_overlap()` adjacency).

use ac_core::{AcAutomaton, PatternSet};
use ac_serve::{merge_shard_matches, plan_shards, serve_fleet, FleetConfig, ScanJob, ServeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The plan is a partition: owned ranges tile `[0, len)` in order
    /// with no gaps, and each scan window extends exactly `overlap`
    /// bytes past its owned end (clamped at the corpus tail).
    #[test]
    fn shard_plan_partitions_and_overlaps_exactly(
        len in 0usize..10_000,
        shards in 1u32..9,
        overlap in 0usize..32,
    ) {
        let segs = plan_shards(len, shards, overlap);
        if len == 0 {
            prop_assert!(segs.is_empty());
            return Ok(());
        }
        prop_assert_eq!(segs[0].owned_start, 0);
        prop_assert_eq!(segs.last().unwrap().owned_end, len);
        for seg in &segs {
            prop_assert!(seg.owned_start < seg.owned_end, "empty owner");
            prop_assert_eq!(seg.scan_start, seg.owned_start);
            prop_assert_eq!(seg.scan_end, (seg.owned_end + overlap).min(len));
        }
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].owned_end, w[1].owned_start, "gap or overlap in owners");
            // Adjacent scan windows share exactly the overlap region
            // (the clamp can only bite on the final segment).
            prop_assert_eq!(
                w[0].scan_end - w[1].scan_start,
                overlap.min(len - w[1].scan_start)
            );
        }
    }

    /// Exactly-once merging: scanning each segment's window independently
    /// and keeping matches that *start* in the owned range reproduces the
    /// serial scan bit-for-bit, for any pattern set and shard count.
    #[test]
    fn merged_shard_matches_equal_serial_scan(
        pats in proptest::collection::vec("[abc]{1,6}", 1..8),
        text in "[abc]{0,600}",
        shards in 1u32..7,
    ) {
        let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
        let ps = PatternSet::from_strs(&refs).unwrap();
        let ac = AcAutomaton::build(&ps);
        let data = text.as_bytes();
        let overlap = ac.required_overlap();

        let segs = plan_shards(data.len(), shards, overlap);
        let per_seg: Vec<_> = segs
            .iter()
            .map(|s| ac.find_all(&data[s.scan_start..s.scan_end]))
            .collect();
        let merged = merge_shard_matches(&segs, &per_seg);

        let mut serial = ac.find_all(data);
        serial.sort();
        prop_assert_eq!(merged, serial);
    }
}

#[test]
fn fleet_scatter_union_equals_single_device_scan() {
    use ac_gpu::{GpuAcMatcher, KernelParams};
    use gpu_sim::GpuConfig;

    // End-to-end: one oversized job dispatched through the routed fleet's
    // scatter path (real simulated kernels per segment, shared-bus
    // transfers) must answer with exactly the single-device match set.
    let cfg = GpuConfig::gtx285();
    let ac = ac_serve::serve_automaton(ac_serve::DEFAULT_PATTERNS, 13);
    let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();

    let payload: Vec<u8> = b"the king and her mother were singing a motion "
        .iter()
        .cycle()
        .take(384 * 1024)
        .copied()
        .collect();
    let mut serial = matcher.automaton().find_all(&payload);
    serial.sort();
    assert!(!serial.is_empty(), "fixture must produce matches");

    for devices in [2u32, 3, 4] {
        let mut fcfg = FleetConfig::new(devices, ServeConfig::new(1));
        fcfg.shard_bytes = Some(64 * 1024);
        let run =
            serve_fleet(&matcher, vec![ScanJob::new(0, payload.clone(), 0.0)], &fcfg).unwrap();
        assert_eq!(run.report.scattered_jobs, 1, "devices={devices}");
        let out = &run.serve.outcomes[0];
        assert_eq!(
            out.matches, serial,
            "devices={devices}: sharded union diverged from serial scan"
        );
    }
}
