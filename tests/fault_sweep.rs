//! The recovery invariant, swept: under every seeded `FaultPlan`, the
//! resilient matcher's output is byte-identical to the serial CPU oracle
//! on realistic corpora — and every rung of the degradation ladder is
//! exercised somewhere in the sweep.

use ac_core::AcAutomaton;
use ac_cpu::ParallelConfig;
use ac_gpu::{pick_layout, run_supervised, Approach, GpuAcMatcher, KernelParams, SuperviseConfig};
use corpus::{extract_patterns, DnaGenerator, ExtractConfig, SignatureGenerator, TextGenerator};
use gpu_sim::{FaultKind, FaultPlan, GpuConfig};
use integration::{ResilientConfig, ResilientMatcher, Tier};
use std::collections::HashSet;

/// One corpus scenario: an automaton and a text to scan.
fn scenario(idx: u64) -> (AcAutomaton, Vec<u8>) {
    match idx % 3 {
        0 => {
            let text = TextGenerator::new(7).generate(3000);
            let ps = extract_patterns(
                &text,
                &ExtractConfig {
                    count: 24,
                    min_len: 3,
                    max_len: 9,
                    seed: 11,
                    align_to_words: true,
                },
            );
            (AcAutomaton::build(&ps), text)
        }
        1 => {
            let mut dna = DnaGenerator::new(13);
            let text = dna.generate(3000);
            let ps = extract_patterns(
                &text,
                &ExtractConfig {
                    count: 16,
                    min_len: 4,
                    max_len: 12,
                    seed: 17,
                    align_to_words: false,
                },
            );
            (AcAutomaton::build(&ps), text)
        }
        _ => {
            let mut sig = SignatureGenerator::new(19);
            let dict = sig.dictionary(20);
            let text = sig.traffic(3000, &dict);
            (AcAutomaton::build(&dict), text)
        }
    }
}

fn resilient(ac: AcAutomaton, parallel: ParallelConfig) -> ResilientMatcher {
    let gpu_cfg = GpuConfig::gtx285();
    ResilientMatcher::new(
        gpu_cfg,
        KernelParams::defaults_for(&gpu_cfg),
        ac,
        ResilientConfig {
            parallel,
            ..ResilientConfig::default()
        },
    )
}

#[test]
fn seeded_sweep_matches_oracle_under_every_plan() {
    const PLANS: u64 = 120;
    let mut kinds_fired: HashSet<FaultKind> = HashSet::new();
    let mut kinds_scheduled: HashSet<FaultKind> = HashSet::new();
    let mut tiers: HashSet<Tier> = HashSet::new();

    for seed in 0..PLANS {
        let plan = FaultPlan::generate(seed);
        assert!(!plan.is_empty(), "seed {seed} generated an empty plan");
        kinds_scheduled.extend(plan.kinds());

        let (ac, text) = scenario(seed);
        let mut want = ac.find_all(&text);
        want.sort();

        let m = resilient(
            ac,
            ParallelConfig {
                threads: 2,
                chunk_size: 1024,
            },
        );
        m.set_fault_plan(plan);
        let run = m.scan(&text);
        assert_eq!(
            run.matches, want,
            "seed {seed}: resilient output diverged from the serial oracle (tier {:?})",
            run.tier
        );
        tiers.insert(run.tier);
        if let Some(gpu) = &run.report.gpu {
            kinds_fired.extend(gpu.faults.iter().map(|f| f.kind));
        }
    }

    for kind in FaultKind::all() {
        assert!(
            kinds_scheduled.contains(&kind),
            "{kind:?} never scheduled across the sweep"
        );
        assert!(
            kinds_fired.contains(&kind),
            "{kind:?} never fired across the sweep"
        );
    }
    assert!(
        tiers.contains(&Tier::Gpu),
        "no plan let the GPU rung answer"
    );
}

#[test]
fn every_rung_of_the_ladder_is_reachable() {
    // Rung 1: clean GPU.
    let (ac, text) = scenario(0);
    let mut want = ac.find_all(&text);
    want.sort();
    let m = resilient(
        ac.clone(),
        ParallelConfig {
            threads: 2,
            chunk_size: 1024,
        },
    );
    let run = m.scan(&text);
    assert_eq!(run.tier, Tier::Gpu);
    assert_eq!(run.matches, want);

    // Rung 2: GPU retries exhausted → parallel CPU.
    let exhaust = (0..64).fold(FaultPlan::none(), |p, i| p.with_launch_transient(i));
    let m = resilient(
        ac.clone(),
        ParallelConfig {
            threads: 2,
            chunk_size: 1024,
        },
    );
    m.set_fault_plan(exhaust.clone());
    let run = m.scan(&text);
    assert_eq!(run.tier, Tier::CpuParallel);
    assert_eq!(run.matches, want);

    // Rung 3: GPU exhausted AND parallel rung broken → serial oracle.
    let m = resilient(
        ac,
        ParallelConfig {
            threads: 0,
            chunk_size: 1024,
        },
    );
    m.set_fault_plan(exhaust);
    let run = m.scan(&text);
    assert_eq!(run.tier, Tier::CpuSerial);
    assert_eq!(run.matches, want);
    assert!(run.report.gpu_error.is_some());
    assert!(run.report.cpu_parallel_error.is_some());
}

#[test]
fn compressed_layout_kernels_recover_under_supervision() {
    // The PR-5 layout family under the supervisor: the CRC readback
    // framing must catch corrupted match buffers on the banded and
    // two-level kernels exactly as it does on the dense ones, and the
    // retried run must stay byte-identical to the oracle.
    let (ac, text) = scenario(0);
    let mut want = ac.find_all(&text);
    want.sort();
    let gpu_cfg = GpuConfig::gtx285();
    let m = GpuAcMatcher::new(gpu_cfg, KernelParams::defaults_for(&gpu_cfg), ac).unwrap();

    for approach in [Approach::SharedBanded, Approach::SharedTwoLevel] {
        // Attempt 1's readback is corrupted, attempt 2's launch dies,
        // attempt 3 answers.
        m.set_fault_plan(
            FaultPlan::none()
                .with_readback_flip(0, 12_345)
                .with_launch_transient(1),
        );
        let s = run_supervised(&m, &text, approach, &SuperviseConfig::default()).unwrap();
        m.clear_fault_plan();
        assert_eq!(s.run.matches, want, "{}", approach.label());
        assert_eq!(s.report.retries, 2, "{}", approach.label());
        assert!(s
            .report
            .faults
            .iter()
            .any(|f| f.kind == FaultKind::ReadbackBitFlip));
        assert!(s
            .report
            .faults
            .iter()
            .any(|f| f.kind == FaultKind::LaunchTransient));
    }

    // gpu:auto — the layout picker's probe launches consume fault
    // indices, so the plan is armed only after picking; the picked
    // kernel then recovers exactly like the fixed ones.
    let choice = pick_layout(&m, &text).unwrap();
    let approach = choice
        .layout
        .approach()
        .expect("picker returns concrete layouts");
    m.set_fault_plan(FaultPlan::none().with_readback_flip(0, 7));
    let s = run_supervised(&m, &text, approach, &SuperviseConfig::default()).unwrap();
    m.clear_fault_plan();
    assert_eq!(s.run.matches, want, "auto:{}", approach.label());
    assert_eq!(s.report.retries, 1, "auto:{}", approach.label());
}

#[test]
fn sweep_is_deterministic() {
    // Same seed → same plan, same tier, same degradation trace.
    for seed in [0u64, 1, 2, 3, 17, 63] {
        let once = {
            let (ac, text) = scenario(seed);
            let m = resilient(
                ac,
                ParallelConfig {
                    threads: 2,
                    chunk_size: 1024,
                },
            );
            m.set_fault_plan(FaultPlan::generate(seed));
            let run = m.scan(&text);
            (
                run.tier,
                run.matches,
                run.report.gpu.map(|g| (g.attempts, g.faults)),
            )
        };
        let twice = {
            let (ac, text) = scenario(seed);
            let m = resilient(
                ac,
                ParallelConfig {
                    threads: 2,
                    chunk_size: 1024,
                },
            );
            m.set_fault_plan(FaultPlan::generate(seed));
            let run = m.scan(&text);
            (
                run.tier,
                run.matches,
                run.report.gpu.map(|g| (g.attempts, g.faults)),
            )
        };
        assert_eq!(once, twice, "seed {seed}");
    }
}
