//! The fault and trace hooks cost nothing when disabled: every
//! benchmark-visible timing/statistics output is bit-identical whether
//! injection is (a) never armed, (b) armed with an empty plan, or (c)
//! wrapped in a supervisor — and whether trace recording is armed or not.
//! The paper's throughput figures therefore cannot drift from merely
//! *having* the robustness or observability layers.

use ac_core::{AcAutomaton, PatternSet};
use ac_gpu::{run_supervised, Approach, GpuAcMatcher, KernelParams, RunOptions, SuperviseConfig};
use gpu_sim::{FaultPlan, GpuConfig, IntrospectConfig, TraceConfig};

fn matcher() -> GpuAcMatcher {
    let cfg = GpuConfig::gtx285();
    let ac = AcAutomaton::build(
        &PatternSet::from_strs(&["he", "she", "his", "hers", "use", "user"]).unwrap(),
    );
    GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap()
}

fn text() -> Vec<u8> {
    b"those users share his shelf; she ushers her heirs there "
        .iter()
        .cycle()
        .take(10_000)
        .copied()
        .collect()
}

/// The loops below iterate `Approach::all()`, so the zero-cost invariant
/// automatically covers new kernels — but only if they are actually in the
/// list. Pin the compressed-layout family's presence so coverage cannot
/// silently shrink if the enumeration is ever reworked.
#[test]
fn approach_enumeration_covers_the_layout_family() {
    for approach in [
        Approach::SharedDiagonal,
        Approach::SharedBanded,
        Approach::SharedTwoLevel,
        Approach::SharedCompressed,
    ] {
        assert!(
            Approach::all().contains(&approach),
            "{approach:?} missing from Approach::all(): the zero-cost-hook \
             tests would no longer cover it"
        );
    }
}

#[test]
fn disabled_and_empty_plan_runs_are_bit_identical() {
    let text = text();
    for approach in Approach::all() {
        let plain = matcher().run(&text, approach).unwrap();

        // Armed with an *empty* plan: the readback verification path runs
        // but nothing fires; simulated timing/stats must not move.
        let armed = matcher();
        armed.set_fault_plan(FaultPlan::none());
        let run = armed.run(&text, approach).unwrap();
        assert_eq!(
            run.stats, plain.stats,
            "{approach:?}: stats drifted with empty plan armed"
        );
        assert_eq!(run.matches, plain.matches, "{approach:?}");
        assert_eq!(run.match_events, plain.match_events, "{approach:?}");

        // Same matcher after disarming: still identical.
        armed.clear_fault_plan();
        let run = armed.run(&text, approach).unwrap();
        assert_eq!(
            run.stats, plain.stats,
            "{approach:?}: stats drifted after disarm"
        );
    }
}

#[test]
fn supervision_does_not_perturb_fault_free_timing() {
    let text = text();
    let m = matcher();
    let plain = m.run(&text, Approach::SharedDiagonal).unwrap();

    let s = run_supervised(
        &m,
        &text,
        Approach::SharedDiagonal,
        &SuperviseConfig::default(),
    )
    .unwrap();
    assert_eq!(s.report.attempts, 1);
    assert_eq!(s.run.stats, plain.stats, "supervised stats drifted");
    assert_eq!(s.run.matches, plain.matches);

    // The watchdog alone (armed, not tripped) must not move timing either.
    let watched = m
        .run_opts(
            &text,
            Approach::SharedDiagonal,
            RunOptions {
                record: true,
                watchdog_cycles: Some(u64::MAX),
                trace: None,
                introspect: None,
                attribution: None,
            },
        )
        .unwrap();
    assert_eq!(watched.stats, plain.stats, "watchdog arming drifted stats");
}

#[test]
fn trace_arming_leaves_launch_stats_bit_identical() {
    let text = text();
    for approach in Approach::all() {
        let plain = matcher().run(&text, approach).unwrap();

        // Recording armed (scheduler + DRAM + per-issue instants): the
        // recorder observes the simulation but must never feed back into
        // it, so every stat — cycles, idle, stall attribution, per-SM
        // breakdowns — is bit-identical to the untraced run.
        let cfg = TraceConfig {
            issues: true,
            ..TraceConfig::default()
        };
        let traced = matcher()
            .run_opts(
                &text,
                approach,
                RunOptions {
                    record: true,
                    watchdog_cycles: None,
                    trace: Some(cfg),
                    introspect: None,
                    attribution: None,
                },
            )
            .unwrap();
        assert_eq!(
            traced.stats, plain.stats,
            "{approach:?}: stats drifted with trace armed"
        );
        assert_eq!(traced.matches, plain.matches, "{approach:?}");
        assert_eq!(traced.match_events, plain.match_events, "{approach:?}");
        let tb = traced.trace.as_ref().expect("trace requested");
        assert!(!tb.is_empty(), "{approach:?}: armed trace recorded nothing");

        // Disarmed run through the same entry point carries no buffer.
        let untraced = matcher()
            .run_opts(
                &text,
                approach,
                RunOptions {
                    record: true,
                    watchdog_cycles: None,
                    trace: None,
                    introspect: None,
                    attribution: None,
                },
            )
            .unwrap();
        assert!(untraced.trace.is_none());
        assert_eq!(
            untraced.stats, plain.stats,
            "{approach:?}: disarmed run drifted"
        );
    }
}

#[test]
fn introspection_arming_leaves_launch_stats_bit_identical() {
    let text = text();
    for approach in Approach::all() {
        let plain = matcher().run(&text, approach).unwrap();

        // Introspection armed (per-set cache counters, bank histograms,
        // DRAM busy intervals, per-row fetch counts): the probe observes
        // the simulation but never feeds back into it, so every stat is
        // bit-identical to the unprobed run.
        let probed = matcher()
            .run_opts(
                &text,
                approach,
                RunOptions {
                    record: true,
                    watchdog_cycles: None,
                    trace: None,
                    introspect: Some(IntrospectConfig::default()),
                    attribution: None,
                },
            )
            .unwrap();
        assert_eq!(
            probed.stats, plain.stats,
            "{approach:?}: stats drifted with introspection armed"
        );
        assert_eq!(probed.matches, plain.matches, "{approach:?}");
        assert_eq!(probed.match_events, plain.match_events, "{approach:?}");
        assert!(plain.introspection.is_none());

        // The snapshot is present and internally consistent: per-set
        // counters sum exactly to each cache's aggregate stats.
        let intro = probed.introspection.expect("introspection requested");
        assert!(!intro.per_sm.is_empty(), "{approach:?}: empty snapshot");
        for sm in &intro.per_sm {
            for (sets, agg, which) in [
                (&sm.tex_l1_sets, &sm.tex_l1, "L1"),
                (&sm.tex_l2_sets, &sm.tex_l2, "L2"),
            ] {
                let accesses: u64 = sets.iter().map(|s| s.accesses).sum();
                let hits: u64 = sets.iter().map(|s| s.hits).sum();
                let evictions: u64 = sets.iter().map(|s| s.evictions).sum();
                assert_eq!(
                    accesses, agg.accesses,
                    "{approach:?} SM {} {which}: per-set accesses != aggregate",
                    sm.sm
                );
                assert_eq!(hits, agg.hits, "{approach:?} SM {} {which}", sm.sm);
                assert!(
                    evictions <= agg.misses,
                    "{approach:?} SM {} {which}: more evictions than misses",
                    sm.sm
                );
            }
        }
    }
}

#[test]
fn attribution_arming_leaves_launch_stats_bit_identical_and_conserves() {
    let text = text();
    for approach in Approach::all() {
        let plain = matcher().run(&text, approach).unwrap();

        // Attribution armed: every fetch/stall cycle is charged to the
        // DFA state being visited, but the ledger only observes — stats,
        // matches, and events must be bit-identical to the plain run.
        let charged = matcher()
            .run_opts(
                &text,
                approach,
                RunOptions {
                    record: true,
                    attribution: Some(gpu_sim::AttributionConfig::default()),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            charged.stats, plain.stats,
            "{approach:?}: stats drifted with attribution armed"
        );
        assert_eq!(charged.matches, plain.matches, "{approach:?}");
        assert_eq!(charged.match_events, plain.match_events, "{approach:?}");
        assert!(plain.attribution.is_none());

        // Conservation: every SM cycle lands in exactly one bucket —
        // charged to a state, unattributed, or post-retire drain.
        let w = charged.attribution.expect("attribution requested");
        assert_eq!(
            w.attributed_cycles() + w.unattributed_cycles + w.drain_cycles,
            w.total_sm_cycles,
            "{approach:?}: cycles leaked from the attribution ledger"
        );
        assert!(
            w.attributed_cycles() > 0,
            "{approach:?}: nothing was charged"
        );
        // Texture traffic folds exactly onto the kernel's own counters.
        let fetches: u64 = w.tex_fetches.iter().sum();
        assert_eq!(
            fetches, charged.stats.totals.tex_fetches,
            "{approach:?}: per-state tex fetches disagree with LaunchStats"
        );

        // Disarmed run through the same entry point carries no ledger.
        let disarmed = matcher()
            .run_opts(
                &text,
                approach,
                RunOptions {
                    record: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(disarmed.attribution.is_none());
        assert_eq!(
            disarmed.stats, plain.stats,
            "{approach:?}: disarmed run drifted"
        );
    }
}

#[test]
fn stream_engine_routing_leaves_launch_stats_bit_identical() {
    use ac_gpu::multistream::{run_multistream, MultiStreamConfig};
    use ac_gpu::PcieConfig;

    // Routing a run through the multi-stream engine is a scheduling
    // wrapper, not a different execution: with one stream and one segment
    // covering the whole input, the kernel's LaunchStats must be
    // bit-identical to the legacy direct-launch path, and the matches the
    // same set.
    let text = text();
    for approach in Approach::all() {
        let m = matcher();
        let plain = m.run(&text, approach).unwrap();
        let cfg = MultiStreamConfig::new(1, text.len(), PcieConfig::gen2_x16());
        let r = run_multistream(&m, &text, approach, &cfg).unwrap();
        assert_eq!(r.segments, 1, "{approach:?}");
        assert_eq!(
            r.segment_stats[0], plain.stats,
            "{approach:?}: stats drifted through the stream engine"
        );
        assert_eq!(r.match_events, plain.match_events, "{approach:?}");
        let mut direct = plain.matches.clone();
        direct.sort();
        direct.dedup();
        assert_eq!(r.matches, direct, "{approach:?}");
    }
}

#[test]
fn serve_telemetry_disarmed_and_armed_runs_are_bit_identical() {
    use ac_serve::{serve, synthetic_workload, ServeConfig, TelemetryConfig, WorkloadConfig};

    // The serving pipeline's observability layer holds the same contract
    // as the kernel-level hooks above: armed telemetry only *observes*
    // the serve loop (it reads already-computed times and counters), so
    // every behavioural output — the report, each job's matches and
    // latencies, the rejection/expiry/shed records, the breaker history,
    // the scheduled stream timeline — must be bit-identical to a
    // disarmed run.
    let matcher = {
        let cfg = GpuConfig::gtx285();
        let ac = ac_serve::serve_automaton(ac_serve::DEFAULT_PATTERNS, 7);
        GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap()
    };
    let workload = WorkloadConfig {
        jobs: 64,
        seed: 7,
        ..WorkloadConfig::defaults()
    };
    let jobs = synthetic_workload(&workload);

    let mut disarmed_cfg = ServeConfig::new(2);
    disarmed_cfg.queue_capacity = 16;
    let mut armed_cfg = disarmed_cfg;
    armed_cfg.telemetry = Some(TelemetryConfig::default());

    let disarmed = serve(&matcher, jobs.clone(), &disarmed_cfg).unwrap();
    let armed = serve(&matcher, jobs, &armed_cfg).unwrap();

    assert_eq!(armed.report, disarmed.report, "ServeReport drifted");
    assert_eq!(armed.outcomes, disarmed.outcomes, "outcomes drifted");
    assert_eq!(armed.rejections, disarmed.rejections);
    assert_eq!(armed.expiries, disarmed.expiries);
    assert_eq!(armed.sheds, disarmed.sheds);
    assert_eq!(armed.breaker_transitions, disarmed.breaker_transitions);
    assert_eq!(armed.timeline, disarmed.timeline, "stream timeline drifted");

    // And the armed run actually recorded something: job spans in the
    // stitched trace, cadence samples in the registry.
    assert!(disarmed.telemetry.is_none());
    let tel = armed.telemetry.expect("telemetry was armed");
    assert!(!tel.trace.is_empty(), "armed telemetry recorded no events");
    assert!(!tel.samples.is_empty(), "registry produced no samples");
}

#[test]
fn serve_pool_disarmed_is_the_legacy_path_and_armed_only_delays() {
    use ac_serve::{
        serve, synthetic_workload, ServeConfig, ServePoolConfig, WorkloadConfig,
        DEFAULT_POOL_CAPACITY,
    };

    // The device pool is an Option hook like every layer above: with
    // `pool: None` the effective PCIe model is the configured one
    // (pinned, untouched) and the run is deterministic with no pool
    // stats; armed with a pinned pool, the only permitted effect is
    // *delay* (allocator driver cycles charged to uploads) — matches and
    // batch structure must not move, and no job may finish earlier.
    let matcher = {
        let cfg = GpuConfig::gtx285();
        let ac = ac_serve::serve_automaton(ac_serve::DEFAULT_PATTERNS, 7);
        GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap()
    };
    let workload = WorkloadConfig {
        jobs: 64,
        seed: 7,
        ..WorkloadConfig::defaults()
    };
    let jobs = synthetic_workload(&workload);

    let plain_cfg = ServeConfig::new(2);
    assert_eq!(
        plain_cfg.effective_pcie(),
        plain_cfg.pcie,
        "pool None must not rewrite the host-memory model"
    );
    let a = serve(&matcher, jobs.clone(), &plain_cfg).unwrap();
    let b = serve(&matcher, jobs.clone(), &plain_cfg).unwrap();
    assert_eq!(a.report, b.report, "disarmed serve must be deterministic");
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.timeline, b.timeline);
    assert!(a.report.pool.is_none());

    let pooled_cfg = plain_cfg.with_pool(ServePoolConfig::pooled(DEFAULT_POOL_CAPACITY));
    assert_eq!(
        pooled_cfg.effective_pcie(),
        plain_cfg.pcie,
        "a pinned pool keeps the link model"
    );
    let pooled = serve(&matcher, jobs, &pooled_cfg).unwrap();
    assert_eq!(pooled.report.batches, a.report.batches);
    assert_eq!(pooled.report.jobs_completed, a.report.jobs_completed);
    for (p, q) in pooled.outcomes.iter().zip(&a.outcomes) {
        assert_eq!(p.id, q.id);
        assert_eq!(p.matches, q.matches, "pool changed job {} answers", p.id);
        assert!(
            p.completed_seconds >= q.completed_seconds - 1e-12,
            "job {} finished earlier with the pool armed",
            p.id
        );
    }
    assert!(pooled.report.pool.is_some());
}

#[test]
fn counting_mode_timing_unaffected_by_armed_empty_plan() {
    let text = text();
    let m = matcher();
    let plain = m.run_counting(&text, Approach::SharedDiagonal).unwrap();
    let armed = matcher();
    armed.set_fault_plan(FaultPlan::none());
    let counted = armed.run_counting(&text, Approach::SharedDiagonal).unwrap();
    assert_eq!(counted.stats, plain.stats);
    assert_eq!(counted.match_events, plain.match_events);
}

#[test]
fn one_device_parity_fleet_is_bit_identical_to_serve() {
    use ac_serve::{
        serve, serve_fleet, synthetic_workload, FleetConfig, ServeConfig, WorkloadConfig,
    };

    // The fleet dispatcher is the outermost zero-cost hook: a 1-device
    // fleet with routing disabled replays the exact `serve()` loop — the
    // shared-bus arbiter never delays a sole device (aggregate bandwidth
    // covers the link, no setup charge), and the parity loop's device
    // argmin degenerates to `next_free_stream()`. Every behavioural
    // output must be bit-identical, including f64 schedule times.
    let matcher = {
        let cfg = GpuConfig::gtx285();
        let ac = ac_serve::serve_automaton(ac_serve::DEFAULT_PATTERNS, 7);
        GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap()
    };
    let workload = WorkloadConfig {
        jobs: 64,
        seed: 7,
        ..WorkloadConfig::defaults()
    };
    let jobs = synthetic_workload(&workload);

    let mut serve_cfg = ServeConfig::new(2);
    serve_cfg.queue_capacity = 16;
    let single = serve(&matcher, jobs.clone(), &serve_cfg).unwrap();
    let fleet = serve_fleet(&matcher, jobs, &FleetConfig::new(1, serve_cfg).parity()).unwrap();

    assert_eq!(fleet.serve.report, single.report, "ServeReport drifted");
    assert_eq!(fleet.serve.outcomes, single.outcomes, "outcomes drifted");
    assert_eq!(fleet.serve.rejections, single.rejections);
    assert_eq!(fleet.serve.expiries, single.expiries);
    assert_eq!(fleet.serve.sheds, single.sheds);
    assert_eq!(fleet.serve.breaker_transitions, single.breaker_transitions);
    assert_eq!(
        fleet.serve.timeline, single.timeline,
        "stream timeline drifted"
    );
    // The fleet wrapper's own accounting agrees with the degenerate case.
    assert_eq!(fleet.report.devices, 1);
    assert_eq!(fleet.timelines.len(), 1);
    assert_eq!(fleet.timelines[0], single.timeline);
    assert!(fleet.report.routing.is_empty(), "parity mode has no router");
    assert!(fleet.report.cost_models.is_empty());
    assert_eq!(fleet.report.scattered_jobs, 0);
}
