//! Overlap efficiency of the stream engine.
//!
//! The whole point of multi-stream execution is that PCIe copies hide
//! under kernels. These tests pin that down quantitatively: in the
//! balanced regime (copy time ≈ kernel time, negligible readback) two or
//! more streams must bring end-to-end time under 0.6× the serial
//! upload+kernel+readback sum, while a single in-order stream must
//! reproduce the serial sum *exactly* — overlap is a scheduling effect,
//! never an accounting one.

use ac_core::{AcAutomaton, PatternSet};
use ac_gpu::multistream::{run_multistream, MultiStreamConfig};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams, PcieConfig};
use gpu_sim::{GpuConfig, StreamEngine, StreamOpKind};

fn matcher() -> GpuAcMatcher {
    let cfg = GpuConfig::gtx285();
    let ac = AcAutomaton::build(&PatternSet::from_strs(&["he", "she", "his", "hers"]).unwrap());
    GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap()
}

fn text(n: usize) -> Vec<u8> {
    b"ushers rush home; his shelf, her shoes "
        .iter()
        .cycle()
        .take(n)
        .copied()
        .collect()
}

/// Issue `n` segments of (upload, kernel, readback) durations on the
/// engine with the staged pattern (readback held until stream reuse) and
/// return (pipelined, serial) seconds.
fn staged_schedule(streams: u32, n: usize, upload: f64, kernel: f64, readback: f64) -> (f64, f64) {
    let mut eng = StreamEngine::new(streams);
    let mut held: Vec<Option<usize>> = vec![None; streams as usize];
    for i in 0..n {
        let s = (i % streams as usize) as u32;
        if let Some(j) = held[s as usize].take() {
            eng.submit(s, StreamOpKind::CopyD2H, &format!("seg{j}"), readback, 0);
        }
        eng.submit(s, StreamOpKind::CopyH2D, &format!("seg{i}"), upload, 0);
        eng.submit(s, StreamOpKind::Kernel, &format!("seg{i}"), kernel, 0);
        held[s as usize] = Some(i);
    }
    for (s, j) in held
        .iter()
        .enumerate()
        .filter_map(|(s, j)| j.map(|j| (s as u32, j)))
    {
        eng.submit(s, StreamOpKind::CopyD2H, &format!("seg{j}"), readback, 0);
    }
    let tl = eng.finish();
    (tl.total_seconds(), tl.serial_seconds())
}

#[test]
fn balanced_engine_schedule_beats_0_6x_serial_with_two_streams() {
    let (upload, kernel, readback) = (1.0e-3, 1.0e-3, 1.0e-5);
    for streams in [2u32, 4] {
        let (pipelined, serial) = staged_schedule(streams, 16, upload, kernel, readback);
        assert!(
            pipelined < 0.6 * serial,
            "streams={streams}: {pipelined:.6}s !< 0.6 x {serial:.6}s"
        );
    }
    // One stream: the same op sequence collapses to the exact serial sum.
    let (pipelined, serial) = staged_schedule(1, 16, upload, kernel, readback);
    assert_eq!(pipelined, serial);
}

#[test]
fn multistream_runner_beats_0_6x_serial_when_copy_matches_kernel() {
    let m = matcher();
    let seg = 4096usize;
    // Match-free input (the cyclic alphabet contains none of the
    // dictionary words): readbacks stay at the 20-byte frame, keeping the
    // copy engine's work equal to the calibrated uploads.
    let t: Vec<u8> = (0..16 * seg).map(|i| b'a' + (i % 26) as u8).collect();
    let overlap = m.automaton().required_overlap();

    // Calibrate the link so one segment's upload takes exactly as long as
    // its kernel: the balanced regime where overlap pays the most.
    let window = &t[..seg + overlap];
    let kernel_secs = m.run(window, Approach::SharedDiagonal).unwrap().seconds();
    let pcie = PcieConfig {
        bandwidth_bytes_per_sec: window.len() as f64 / kernel_secs,
        latency_sec: 0.0,
        host_memory: gpu_sim::HostMemory::pinned(),
    };

    for streams in [2u32, 4] {
        let cfg = MultiStreamConfig::new(streams, seg, pcie);
        let r = run_multistream(&m, &t, Approach::SharedDiagonal, &cfg).unwrap();
        assert!(
            r.pipelined_seconds < 0.6 * r.serial_seconds,
            "streams={streams}: {:.6}s !< 0.6 x {:.6}s",
            r.pipelined_seconds,
            r.serial_seconds
        );
    }
}

#[test]
fn single_stream_runner_equals_the_serial_sum_exactly() {
    let m = matcher();
    let t = text(48 * 1024);
    for seg in [4096usize, 16 * 1024] {
        let cfg = MultiStreamConfig::new(1, seg, PcieConfig::gen2_x16());
        let r = run_multistream(&m, &t, Approach::SharedDiagonal, &cfg).unwrap();
        // Bit-identical, not approximately equal: one in-order stream
        // executes ops back to back in issue order, which is the same
        // left-fold the serial sum computes.
        assert_eq!(r.pipelined_seconds, r.serial_seconds);
        assert_eq!(r.overlap_speedup(), 1.0);
    }
}
