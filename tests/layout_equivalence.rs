//! Layout equivalence: every compressed STT layout (banded, two-level,
//! bitmap) produces a match set bit-identical to the dense-STT reference —
//! on corpus workloads, on randomized pattern/text pairs, and through the
//! batched serving path. Compression may only change *where* transitions
//! live, never what they say.

use ac_core::{naive, AcAutomaton, Match, PatternSet};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams, SttLayout};
use corpus::{extract_patterns, ExtractConfig, TextGenerator};
use gpu_sim::GpuConfig;
use proptest::prelude::*;

/// The compressed members of the layout family, as kernel approaches.
fn compressed_approaches() -> Vec<Approach> {
    SttLayout::all_concrete()
        .into_iter()
        .filter(|l| *l != SttLayout::Dense)
        .map(|l| l.approach().expect("concrete layouts have kernels"))
        .collect()
}

fn sorted(mut v: Vec<Match>) -> Vec<Match> {
    v.sort();
    v
}

#[test]
fn compressed_layouts_match_dense_on_corpus_workload() {
    let text = TextGenerator::new(500).generate(48 * 1024);
    let source = TextGenerator::new(501).generate(96 * 1024);
    let ps = extract_patterns(&source, &ExtractConfig::paper_default(200, 502));
    let ac = AcAutomaton::build(&ps);
    let serial = sorted(ac.find_all(&text));
    assert!(!serial.is_empty());

    let cfg = GpuConfig::gtx285();
    let m = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac).unwrap();
    let dense = m.run(&text, Approach::SharedDiagonal).unwrap().matches;
    assert_eq!(dense, serial, "dense reference disagrees with serial");
    for approach in compressed_approaches() {
        let run = m.run(&text, approach).unwrap();
        assert_eq!(run.matches, dense, "{approach:?} diverged from dense");
    }
}

#[test]
fn compressed_layouts_match_dense_through_the_serving_path() {
    use ac_serve::{serve, synthetic_workload, ServeConfig, WorkloadConfig};

    let ac = ac_serve::serve_automaton(64, 7);
    let cfg = GpuConfig::gtx285();
    let jobs = synthetic_workload(&WorkloadConfig {
        jobs: 24,
        arrival_rate_per_sec: 50_000,
        job_bytes: 1024,
        seed: 7,
        ..WorkloadConfig::defaults()
    });

    // Per-job match lists from the dense layout are the reference; every
    // compressed layout must serve the same answers job for job.
    type JobAnswers = Vec<(u64, Vec<Match>)>;
    let mut per_layout: Vec<(Approach, JobAnswers)> = Vec::new();
    for layout in SttLayout::all_concrete() {
        let approach = layout.approach().expect("concrete layouts have kernels");
        let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac.clone()).unwrap();
        let serve_cfg = ServeConfig {
            approach,
            ..ServeConfig::new(2)
        };
        let run = serve(&matcher, jobs.clone(), &serve_cfg).unwrap();
        assert_eq!(run.report.jobs_completed, 24, "{approach:?}");
        let mut answers: JobAnswers = run
            .outcomes
            .into_iter()
            .map(|o| (o.id, sorted(o.matches)))
            .collect();
        answers.sort_by_key(|(id, _)| *id);
        per_layout.push((approach, answers));
    }
    let (_, dense) = &per_layout[0];
    for (approach, answers) in &per_layout[1..] {
        assert_eq!(answers, dense, "{approach:?} served different matches");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized equivalence: on arbitrary small pattern sets and texts,
    /// every compressed layout agrees with brute force (and hence with the
    /// dense reference, covered by `cross_impl_equivalence`).
    #[test]
    fn compressed_layouts_equal_brute_force_random(
        pats in proptest::collection::vec("[abc]{1,6}", 1..8),
        text in "[abc]{0,400}",
    ) {
        let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
        let ps = PatternSet::from_strs(&refs).unwrap();
        let want = naive::find_all(&ps, text.as_bytes());
        let cfg = GpuConfig::gtx285();
        let m = GpuAcMatcher::new(
            cfg,
            KernelParams { threads_per_block: 32, global_chunk_bytes: 64, shared_chunk_bytes: 64 },
            AcAutomaton::build(&ps),
        ).unwrap();
        for approach in compressed_approaches() {
            let run = m.run(text.as_bytes(), approach).unwrap();
            prop_assert_eq!(&run.matches, &want, "{:?}", approach);
        }
    }
}
