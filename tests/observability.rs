//! End-to-end acceptance tests for the observability layer: an armed
//! trace exports valid Chrome trace-event JSON, the recorded stall spans
//! reconcile exactly with the scheduler's stall attribution, and the
//! per-SM stall-reason cycles always sum to `idle_cycles` — the
//! invariant the Fig. 19 latency-hiding narrative rests on.

use ac_core::{AcAutomaton, PatternSet};
use ac_gpu::{Approach, GpuAcMatcher, GpuRun, KernelParams, RunOptions};
use gpu_sim::{GpuConfig, StallReason, TraceConfig};
use std::collections::HashMap;
use trace::{parse_chrome_json, to_chrome_json, validate_chrome_json, ArgValue, MetricValue};

fn matcher(cfg: &GpuConfig) -> GpuAcMatcher {
    let ac = AcAutomaton::build(
        &PatternSet::from_strs(&["he", "she", "his", "hers", "use", "user"]).unwrap(),
    );
    GpuAcMatcher::new(*cfg, KernelParams::defaults_for(cfg), ac).unwrap()
}

fn text() -> Vec<u8> {
    b"those users share his shelf; she ushers her heirs there "
        .iter()
        .cycle()
        .take(6_000)
        .copied()
        .collect()
}

fn traced_run(cfg: &GpuConfig, approach: Approach) -> GpuRun {
    matcher(cfg)
        .run_opts(
            &text(),
            approach,
            RunOptions {
                record: true,
                watchdog_cycles: None,
                trace: Some(TraceConfig::default()),
                introspect: None,
                attribution: None,
            },
        )
        .unwrap()
}

/// The headline acceptance criterion: for every approach, the per-SM
/// stall-reason cycles sum to that SM's `idle_cycles` (and likewise for
/// the device totals), and the exported Chrome trace validates against
/// the trace-event schema with nothing lost.
#[test]
fn stall_attribution_accounts_for_every_idle_cycle() {
    let cfg = GpuConfig::gtx285();
    for approach in Approach::all() {
        let run = traced_run(&cfg, approach);

        let mut sm_idle_sum = 0;
        for (i, s) in run.stats.per_sm.iter().enumerate() {
            assert_eq!(
                s.stalls.total(),
                s.idle_cycles,
                "{approach:?}: SM {i} stall breakdown does not cover its idle cycles",
            );
            sm_idle_sum += s.idle_cycles;
        }
        assert_eq!(
            run.stats.totals.stalls.total(),
            run.stats.totals.idle_cycles,
            "{approach:?}"
        );
        assert_eq!(run.stats.totals.idle_cycles, sm_idle_sum, "{approach:?}");

        let tb = run.trace.as_ref().expect("trace armed");
        assert!(!tb.is_empty(), "{approach:?}: armed trace recorded nothing");
        let json = to_chrome_json(tb, cfg.clock_hz / 1e6);
        let summary = validate_chrome_json(&json)
            .unwrap_or_else(|e| panic!("{approach:?}: invalid Chrome trace JSON: {e}"));
        assert_eq!(
            summary.events,
            tb.len(),
            "{approach:?}: exporter lost events"
        );
    }
}

/// The trace is not merely well-formed — its stall spans carry the same
/// cycle accounting as the statistics. Summing `warp-stall` span
/// durations per (SM, reason) reproduces each SM's `StallBreakdown`.
#[test]
fn recorded_stall_spans_reconcile_with_stats() {
    let cfg = GpuConfig::gtx285();
    let run = traced_run(&cfg, Approach::SharedDiagonal);
    let tb = run.trace.as_ref().unwrap();
    assert_eq!(
        tb.dropped(),
        0,
        "buffer overflowed; reconciliation needs every event"
    );

    let mut by_sm_reason: HashMap<(u32, String), u64> = HashMap::new();
    for ev in tb.events() {
        if ev.name != "warp-stall" {
            continue;
        }
        let reason = ev
            .args
            .iter()
            .find_map(|(k, v)| match (k.as_str(), v) {
                ("reason", ArgValue::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .expect("warp-stall span carries a reason arg");
        *by_sm_reason.entry((ev.tid, reason)).or_default() += ev.dur;
    }
    assert!(!by_sm_reason.is_empty(), "no stall spans recorded");

    for (i, s) in run.stats.per_sm.iter().enumerate() {
        for reason in StallReason::all() {
            let traced = by_sm_reason
                .get(&(i as u32, reason.label().to_string()))
                .copied()
                .unwrap_or(0);
            assert_eq!(
                traced,
                s.stalls.get(reason),
                "SM {i} {reason:?}: trace and stats disagree",
            );
        }
    }
}

/// The host-phase spans and the Chrome parser round-trip: an export at
/// unit scale parses back to exactly the recorded events, and the
/// upload → kernel → readback narrative is present.
#[test]
fn host_phases_recorded_and_export_round_trips() {
    let cfg = GpuConfig::gtx285();
    let run = traced_run(&cfg, Approach::GlobalOnly);
    let tb = run.trace.as_ref().unwrap();

    for name in ["upload", "kernel", "readback"] {
        assert!(
            tb.events()
                .iter()
                .any(|ev| ev.name == name && ev.cat == "host"),
            "missing host-phase event {name:?}",
        );
    }

    let json = to_chrome_json(tb, 1.0);
    let parsed = parse_chrome_json(&json, 1.0).unwrap();
    assert_eq!(&parsed, tb.events());
}

/// The flat metrics snapshot mirrors the statistics it was built from
/// and renders to both machine formats.
#[test]
fn metrics_snapshot_reconciles_with_launch_stats() {
    let cfg = GpuConfig::gtx285();
    let input = text();
    let run = traced_run(&cfg, Approach::SharedDiagonal);
    let snap = run.stats.metrics(cfg.clock_hz, input.len() as u64);

    let idle = snap
        .get("acsim_idle_cycles", &[])
        .expect("idle gauge present");
    assert_eq!(idle.value, MetricValue::U64(run.stats.totals.idle_cycles));

    let mut stall_sum = 0;
    for reason in StallReason::all() {
        let m = snap
            .get("acsim_stall_cycles", &[("reason", reason.label())])
            .unwrap_or_else(|| panic!("missing stall gauge for {reason:?}"));
        match m.value {
            MetricValue::U64(v) => stall_sum += v,
            ref other => panic!("stall gauge has non-integer value {other:?}"),
        }
    }
    assert_eq!(
        stall_sum, run.stats.totals.idle_cycles,
        "labelled stall gauges must sum to idle"
    );

    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE acsim_launch_cycles gauge"));
    assert!(prom.contains("acsim_stall_cycles{reason=\"tex-miss\"}"));
    let json = snap.to_json();
    serde_json::from_str::<serde::Value>(&json).expect("metrics JSON parses");
}
