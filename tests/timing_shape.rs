//! Timing-shape invariants: the qualitative results of the paper's
//! evaluation must hold in the simulation. These are the properties
//! EXPERIMENTS.md reports quantitatively; here they gate CI.

use ac_core::AcAutomaton;
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::{extract_patterns, ExtractConfig, TextGenerator};
use cpu_sim::{simulate_serial, CpuConfig};
use gpu_sim::GpuConfig;

struct Rig {
    text: Vec<u8>,
    matcher: GpuAcMatcher,
}

fn rig(patterns: usize, bytes: usize) -> Rig {
    let text = TextGenerator::new(900).generate(bytes);
    let source = TextGenerator::new(901).generate(512 * 1024);
    let ps = extract_patterns(&source, &ExtractConfig::paper_default(patterns, 902));
    let cfg = GpuConfig::gtx285();
    let matcher = GpuAcMatcher::new(
        cfg,
        KernelParams::defaults_for(&cfg),
        AcAutomaton::build(&ps),
    )
    .expect("matcher construction succeeds");
    Rig { text, matcher }
}

fn cycles(r: &Rig, a: Approach) -> u64 {
    r.matcher
        .run_counting(&r.text, a)
        .expect("run succeeds")
        .stats
        .cycles
}

/// Paper Figs. 15/18 vs 14/17: the shared-memory approach beats the
/// global-memory-only approach.
#[test]
fn shared_beats_global_only() {
    let r = rig(200, 256 * 1024);
    assert!(cycles(&r, Approach::SharedDiagonal) < cycles(&r, Approach::GlobalOnly));
}

/// Paper Fig. 23: the diagonal store scheme beats coalescing-only, which
/// (with the uncoalesced staging as well) beats fully naive staging.
#[test]
fn store_scheme_ordering() {
    let r = rig(200, 256 * 1024);
    let diag = cycles(&r, Approach::SharedDiagonal);
    let coal = cycles(&r, Approach::SharedCoalescedOnly);
    let naive = cycles(&r, Approach::SharedNaive);
    assert!(diag < coal, "diagonal {diag} !< coalesced-only {coal}");
    assert!(coal < naive, "coalesced-only {coal} !< naive {naive}");
}

/// Paper Figs. 20–21: both GPU kernels beat the modelled serial CPU on a
/// non-trivial input.
#[test]
fn gpu_beats_modelled_serial() {
    let r = rig(200, 256 * 1024);
    let cpu = CpuConfig::core2duo_2_2ghz();
    let serial = simulate_serial(&cpu, r.matcher.automaton().stt(), &r.text);
    let serial_secs = serial.seconds(&cpu);
    for a in [Approach::GlobalOnly, Approach::SharedDiagonal] {
        let run = r.matcher.run_counting(&r.text, a).unwrap();
        assert!(
            run.seconds() < serial_secs,
            "{a:?} ({}s) not faster than serial ({serial_secs}s)",
            run.seconds()
        );
    }
}

/// Paper Figs. 16–18: for a fixed dictionary, throughput grows with the
/// input size (more parallelism to fill the device).
#[test]
fn throughput_grows_with_input_size() {
    let small = rig(200, 64 * 1024);
    let large = rig(200, 512 * 1024);
    let g_small = small
        .matcher
        .run_counting(&small.text, Approach::SharedDiagonal)
        .unwrap();
    let g_large = large
        .matcher
        .run_counting(&large.text, Approach::SharedDiagonal)
        .unwrap();
    assert!(g_large.gbps() > g_small.gbps());
}

/// Paper Figs. 16–18: for a fixed input, throughput decreases as the
/// dictionary grows (texture-cache pressure), for every approach.
#[test]
fn throughput_decreases_with_pattern_count() {
    let few = rig(100, 256 * 1024);
    let many = rig(5_000, 256 * 1024);
    for a in [Approach::GlobalOnly, Approach::SharedDiagonal] {
        let g_few = few.matcher.run_counting(&few.text, a).unwrap().gbps();
        let g_many = many.matcher.run_counting(&many.text, a).unwrap().gbps();
        assert!(g_many < g_few, "{a:?}: {g_many} !< {g_few}");
    }
}

/// Paper §V.B: the shared approach tolerates dictionary growth better
/// than the serial CPU does (its relative slowdown is smaller).
#[test]
fn shared_degrades_less_than_serial() {
    let few = rig(100, 256 * 1024);
    let many = rig(5_000, 256 * 1024);
    let cpu = CpuConfig::core2duo_2_2ghz();
    let serial_few = simulate_serial(&cpu, few.matcher.automaton().stt(), &few.text).cycles;
    let serial_many = simulate_serial(&cpu, many.matcher.automaton().stt(), &many.text).cycles;
    let serial_slowdown = serial_many as f64 / serial_few as f64;
    let shared_slowdown = cycles(&many, Approach::SharedDiagonal) as f64
        / cycles(&few, Approach::SharedDiagonal) as f64;
    assert!(
        shared_slowdown < serial_slowdown,
        "shared slowed {shared_slowdown}x vs serial {serial_slowdown}x"
    );
}

/// The texture-cache mechanism: a larger dictionary lowers the texture
/// hit rate (paper §V.B's explanation of every throughput trend).
#[test]
fn tex_hit_rate_falls_with_patterns() {
    let few = rig(100, 128 * 1024);
    let many = rig(5_000, 128 * 1024);
    let h_few = few
        .matcher
        .run_counting(&few.text, Approach::SharedDiagonal)
        .unwrap()
        .stats
        .totals
        .tex_hit_rate();
    let h_many = many
        .matcher
        .run_counting(&many.text, Approach::SharedDiagonal)
        .unwrap()
        .stats
        .totals
        .tex_hit_rate();
    assert!(h_many < h_few, "{h_many} !< {h_few}");
}

/// Determinism: identical runs give identical cycle counts.
#[test]
fn simulation_is_deterministic() {
    let r1 = rig(150, 64 * 1024);
    let r2 = rig(150, 64 * 1024);
    for a in Approach::all() {
        assert_eq!(cycles(&r1, a), cycles(&r2, a), "{a:?}");
    }
}
