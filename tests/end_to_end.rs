//! End-to-end pipeline: corpus → dictionary → automaton → simulated-GPU
//! kernels → matches, validated against the serial oracle at every stage.

use ac_core::{naive, AcAutomaton};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::{extract_patterns, ExtractConfig, SignatureGenerator, TextGenerator};
use gpu_sim::GpuConfig;

fn matcher_for(patterns: &ac_core::PatternSet) -> GpuAcMatcher {
    let cfg = GpuConfig::gtx285();
    GpuAcMatcher::new(
        cfg,
        KernelParams::defaults_for(&cfg),
        AcAutomaton::build(patterns),
    )
    .expect("matcher construction succeeds")
}

#[test]
fn prose_pipeline_all_kernels_equal_serial() {
    let text = TextGenerator::new(100).generate(96 * 1024);
    let source = TextGenerator::new(101).generate(128 * 1024);
    let patterns = extract_patterns(&source, &ExtractConfig::paper_default(300, 102));
    let m = matcher_for(&patterns);
    let mut want = m.automaton().find_all(&text);
    want.sort();
    assert!(!want.is_empty(), "workload should produce matches");
    for approach in Approach::all() {
        let run = m.run(&text, approach).expect("kernel run succeeds");
        assert_eq!(run.matches, want, "{approach:?} diverged from serial");
        // The raw flagged-position count can exceed the match count only
        // through the overlap regions; it can never be less than the
        // number of distinct (end, state) events that produced matches.
        assert!(
            run.match_events as usize
                >= want
                    .iter()
                    .map(|m| m.end)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
        );
    }
}

#[test]
fn ids_pipeline_binary_signatures() {
    // Binary-heavy signatures exercise the full byte alphabet.
    let mut gen = SignatureGenerator::new(7);
    let rules = gen.dictionary(400);
    let traffic = gen.traffic(64 * 1024, &rules);
    let m = matcher_for(&rules);
    let mut want = m.automaton().find_all(&traffic);
    want.sort();
    assert!(
        !want.is_empty(),
        "traffic should contain embedded signatures"
    );
    for approach in [
        Approach::SharedDiagonal,
        Approach::GlobalOnly,
        Approach::Pfac,
    ] {
        let run = m.run(&traffic, approach).expect("kernel run succeeds");
        assert_eq!(run.matches, want, "{approach:?} diverged");
    }
}

#[test]
fn gpu_matches_equal_brute_force_on_adversarial_overlaps() {
    // Self-overlapping patterns at chunk boundaries are the classic
    // parallel-AC bug; the brute-force oracle is the ground truth here.
    let patterns =
        ac_core::PatternSet::from_strs(&["aa", "aaa", "aaaa", "ab", "ba", "bab"]).unwrap();
    let mut text = Vec::new();
    for i in 0..4096 {
        text.push(if i % 7 < 4 { b'a' } else { b'b' });
    }
    let m = matcher_for(&patterns);
    let want = naive::find_all(&patterns, &text);
    for approach in Approach::all() {
        let run = m.run(&text, approach).expect("kernel run succeeds");
        assert_eq!(run.matches, want, "{approach:?} diverged from brute force");
    }
}

#[test]
fn tiny_and_empty_inputs() {
    let patterns = ac_core::PatternSet::from_strs(&["xyz"]).unwrap();
    let m = matcher_for(&patterns);
    for text in [&b""[..], b"x", b"xy", b"xyz", b"xyzxyz"] {
        let mut want = m.automaton().find_all(text);
        want.sort();
        for approach in Approach::all() {
            let run = m.run(text, approach).expect("kernel run succeeds");
            assert_eq!(run.matches, want, "{approach:?} on {:?}", text);
        }
    }
}

#[test]
fn throughput_reporting_is_consistent() {
    let text = TextGenerator::new(5).generate(64 * 1024);
    let patterns = ac_core::PatternSet::from_strs(&["the", "and", "here"]).unwrap();
    let m = matcher_for(&patterns);
    let run = m.run(&text, Approach::SharedDiagonal).unwrap();
    // gbps = bytes*8 / seconds / 1e9, seconds = cycles / clock.
    let expect = text.len() as f64 * 8.0 / (run.stats.cycles as f64 / 1.476e9) / 1e9;
    assert!((run.gbps() - expect).abs() < 1e-9);
    assert!(run.seconds() > 0.0);
}
