//! Network intrusion detection — the paper's lead application (§I): deep
//! packet inspection of traffic against a dictionary of Snort-like
//! signatures, on the CPU and on the simulated GPU.
//!
//! ```text
//! cargo run --release -p ac-gpu --example network_ids
//! ```

use ac_core::AcAutomaton;
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::SignatureGenerator;
use gpu_sim::GpuConfig;

fn main() -> Result<(), String> {
    // A rule set of 2 000 signatures and 4 MB of synthetic traffic with
    // embedded attacks.
    let mut gen = SignatureGenerator::new(2024);
    let rules = gen.dictionary(2_000);
    let traffic = gen.traffic(4 * 1024 * 1024, &rules);
    println!(
        "rule set: {} signatures ({}-{} bytes); traffic: {} MB",
        rules.len(),
        rules.min_len(),
        rules.max_len(),
        traffic.len() / (1024 * 1024)
    );

    let ac = AcAutomaton::build(&rules);
    println!(
        "automaton: {} states, STT {:.1} MB",
        ac.state_count(),
        ac.stt().size_bytes() as f64 / 1e6
    );

    // CPU scan (real wall time on this host).
    let cpu = ac_cpu::find_all_timed(&ac, &traffic);
    println!(
        "\nCPU serial scan: {} alerts in {:.1} ms ({:.2} Gbps real)",
        cpu.matches.len(),
        cpu.elapsed.as_secs_f64() * 1e3,
        cpu.gbps()
    );

    // Simulated GTX 285 scan with the paper's kernel.
    let cfg = GpuConfig::gtx285();
    let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac)?;
    let run = matcher.run(&traffic, Approach::SharedDiagonal)?;
    assert_eq!(run.matches.len(), cpu.matches.len(), "GPU and CPU disagree");
    println!(
        "GPU shared-memory scan: {} alerts, {:.1} ms simulated ({:.2} Gbps simulated, tex hit {:.1}%)",
        run.matches.len(),
        run.seconds() * 1e3,
        run.gbps(),
        run.stats.totals.tex_hit_rate() * 100.0
    );

    // Show a few alerts.
    println!("\nfirst alerts:");
    for m in run.matches.iter().take(5) {
        let sig = matcher.automaton().patterns().get(m.pattern);
        println!(
            "  offset {:>8}: signature #{:<5} {:?}",
            m.start,
            m.pattern,
            String::from_utf8_lossy(sig)
        );
    }
    Ok(())
}
