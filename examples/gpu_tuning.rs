//! GPU tuning tour: what each of the paper's optimizations buys.
//!
//! Runs one workload through the four kernels and prints the
//! memory-hierarchy statistics that explain the differences — coalescing
//! ratios, bank-conflict counts, texture hit rates, idle (latency-stall)
//! cycles. This is paper §IV.B.3 and Fig. 23 as a narrated experiment.
//!
//! ```text
//! cargo run --release -p ac-gpu --example gpu_tuning
//! ```

use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::{extract_patterns, ExtractConfig, TextGenerator};
use gpu_sim::{
    ConstId, GpuConfig, GpuDevice, LaunchConfig, StepOutcome, TexId, WarpCtx, WarpGeometry,
    WarpProgram,
};
use std::sync::Arc;

fn main() -> Result<(), String> {
    let text = TextGenerator::new(9).generate(1024 * 1024);
    let source = TextGenerator::new(10).generate(512 * 1024);
    let patterns = extract_patterns(&source, &ExtractConfig::paper_default(500, 11));
    let ac = ac_core::AcAutomaton::build(&patterns);

    let cfg = GpuConfig::gtx285();
    let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac)?;
    println!("workload: 1 MB prose, 500 extracted patterns; device: simulated GTX 285\n");
    println!(
        "{:>22} | {:>10} | {:>9} | {:>11} | {:>9} | {:>10}",
        "kernel", "Gbps", "coalesce", "bank confl", "tex hit", "idle %"
    );
    println!("{}", "-".repeat(88));

    let mut baseline_cycles = None;
    for approach in [
        Approach::GlobalOnly,
        Approach::SharedNaive,
        Approach::SharedCoalescedOnly,
        Approach::SharedDiagonal,
    ] {
        let run = matcher.run_counting(&text, approach)?;
        let t = &run.stats.totals;
        let idle = 100.0 * t.idle_cycles as f64 / (t.cycles.max(1) as f64 * cfg.num_sms as f64);
        println!(
            "{:>22} | {:>10.2} | {:>8.1}x | {:>11} | {:>8.1}% | {:>9.1}%",
            approach.label(),
            run.gbps(),
            t.coalescing_ratio(),
            t.shared_conflicts,
            t.tex_hit_rate() * 100.0,
            idle
        );
        if approach == Approach::GlobalOnly {
            baseline_cycles = Some(run.stats.cycles);
        } else if approach == Approach::SharedDiagonal {
            if let Some(base) = baseline_cycles {
                println!(
                    "\nshared-diagonal is {:.1}x faster than global-only on this workload",
                    base as f64 / run.stats.cycles as f64
                );
            }
        }
    }

    println!("\nreading the table:");
    println!("  coalesce    — lane requests served per DRAM transaction (16 = perfect)");
    println!("  bank confl  — half-warp shared accesses that serialized (paper Fig. 12)");
    println!("  tex hit     — STT texture cache hit rate (paper §V.B)");
    println!("  idle        — SM cycles with every warp stalled on memory (Fig. 19b)");

    // Bonus: why the paper puts the STT in *texture* memory and not in
    // *constant* memory (§IV.B.2). Both are cached read-only spaces, but
    // the constant cache is broadcast-optimized: a warp whose 32 lanes
    // read 32 different table entries — exactly what AC's per-lane DFA
    // states produce — serializes into 32 passes.
    println!("\ntexture vs constant memory for a randomly-indexed table:");
    let (tex_cycles, const_cycles) = table_lookup_microbench(&cfg)?;
    println!("  texture path:  {tex_cycles:>8} cycles");
    println!("  constant path: {const_cycles:>8} cycles");
    println!(
        "  constant memory is {:.1}x slower for divergent lookups — the paper's choice holds",
        const_cycles as f64 / tex_cycles as f64
    );
    Ok(())
}

/// A warp program performing `ROUNDS` per-lane-divergent lookups into a
/// 256-entry table via texture or constant memory.
struct TableLookup {
    geom: WarpGeometry,
    tex: Option<TexId>,
    cst: Option<ConstId>,
    round: u32,
    acc: u32,
}

const LOOKUP_ROUNDS: u32 = 256;

impl WarpProgram for TableLookup {
    fn step(&mut self, ctx: &mut WarpCtx<'_>) -> StepOutcome {
        if self.round == LOOKUP_ROUNDS {
            return StepOutcome::Finished;
        }
        let n = self.geom.warp_size as usize;
        // Pseudo-random divergent index per lane (like DFA states).
        let idx = |lane: usize| ((lane as u32 * 97 + self.round * 31 + self.acc) % 256, ());
        let mut out = vec![0u32; n];
        if let Some(t) = self.tex {
            let coords: Vec<Option<(u32, u32)>> = (0..n).map(|l| Some((0u32, idx(l).0))).collect();
            ctx.tex_fetch(t, &coords, &mut out);
        } else if let Some(cid) = self.cst {
            let indices: Vec<Option<u32>> = (0..n).map(|l| Some(idx(l).0)).collect();
            ctx.const_read_u32(cid, &indices, &mut out);
        }
        self.acc = self.acc.wrapping_add(out[0]);
        self.round += 1;
        StepOutcome::Continue
    }
}

fn table_lookup_microbench(cfg: &GpuConfig) -> Result<(u64, u64), String> {
    let table: Arc<Vec<u32>> = Arc::new((0..256).collect());
    let lc = LaunchConfig {
        grid_blocks: 30,
        threads_per_block: 128,
        shared_bytes_per_block: 0,
        resident_blocks_cap: None,
    };
    let mut dev = GpuDevice::new(*cfg)?;
    let tex = dev.bind_texture_2d(table.clone(), 1, 256)?;
    let t = dev
        .launch(lc, |geom| TableLookup {
            geom,
            tex: Some(tex),
            cst: None,
            round: 0,
            acc: 0,
        })?
        .stats
        .cycles;
    let mut dev = GpuDevice::new(*cfg)?;
    let cid = dev.bind_constant(table)?;
    let c = dev
        .launch(lc, |geom| TableLookup {
            geom,
            tex: None,
            cst: Some(cid),
            round: 0,
            acc: 0,
        })?
        .stats
        .cycles;
    Ok((t, c))
}
