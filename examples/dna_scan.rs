//! Bio-sequence analysis — the paper's second motivating domain (§I):
//! scanning a DNA sequence for a dictionary of motifs, comparing the
//! classic chunked kernels with the PFAC baseline on the small {A,C,G,T}
//! alphabet.
//!
//! ```text
//! cargo run --release -p ac-gpu --example dna_scan
//! ```

use ac_core::{AcAutomaton, PatternSet};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use corpus::DnaGenerator;
use gpu_sim::GpuConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), String> {
    // 2 MB of human-like DNA and 500 motifs of 8–20 bases sampled from it
    // (so matches occur, like real motif scans).
    let mut dna_gen = DnaGenerator::new(77);
    let genome = dna_gen.generate(2 * 1024 * 1024);
    let mut rng = StdRng::seed_from_u64(78);
    let motifs: Vec<Vec<u8>> = (0..500)
        .map(|_| {
            let len = rng.random_range(8..=20usize);
            let at = rng.random_range(0..genome.len() - len);
            genome[at..at + len].to_vec()
        })
        .collect();
    let patterns = PatternSet::new(motifs).map_err(|e| e.to_string())?;
    let ac = AcAutomaton::build(&patterns);
    println!(
        "genome: {} Mb; motifs: {} ({}-{} bases); automaton: {} states",
        genome.len() as f64 / 1e6,
        patterns.len(),
        patterns.min_len(),
        patterns.max_len(),
        ac.state_count()
    );

    let cfg = GpuConfig::gtx285();
    let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac)?;

    // On the 4-letter alphabet, PFAC walks survive much longer than on
    // text (every base has a goto from the root), making the
    // thread-per-base baseline interesting to contrast.
    let mut reference: Option<usize> = None;
    for approach in [
        Approach::SharedDiagonal,
        Approach::GlobalOnly,
        Approach::Pfac,
    ] {
        let run = matcher.run(&genome, approach)?;
        if let Some(n) = reference {
            assert_eq!(run.matches.len(), n, "{approach:?} diverged");
        } else {
            reference = Some(run.matches.len());
        }
        println!(
            "  {:>16}: {:>7} motif hits, {:>8.2} Gbps simulated (tex hit {:>5.1}%)",
            approach.label(),
            run.matches.len(),
            run.gbps(),
            run.stats.totals.tex_hit_rate() * 100.0
        );
    }

    // Motif density report.
    let hits = matcher.run(&genome, Approach::SharedDiagonal)?.matches;
    let per_mb = hits.len() as f64 / (genome.len() as f64 / 1e6);
    println!("\n{} total hits ≈ {per_mb:.0} per Mb", hits.len());
    Ok(())
}
