//! Quickstart: build an automaton, match on the CPU, then run the same
//! dictionary through the simulated-GPU kernels and compare.
//!
//! ```text
//! cargo run --release -p ac-gpu --example quickstart
//! ```

use ac_core::{AcAutomaton, PatternSet};
use ac_gpu::{Approach, GpuAcMatcher, KernelParams};
use gpu_sim::GpuConfig;

fn main() -> Result<(), String> {
    // 1. The paper's running example (§II): patterns {he, she, his, hers}.
    let patterns =
        PatternSet::from_strs(&["he", "she", "his", "hers"]).map_err(|e| e.to_string())?;
    let ac = AcAutomaton::build(&patterns);
    println!(
        "automaton: {} states, STT {} bytes",
        ac.state_count(),
        ac.stt().size_bytes()
    );

    // 2. Serial matching.
    let text = b"ushers say she sells seashells; his heirs hear hers";
    let matches = ac.find_all(text);
    println!("\nserial matches in {:?}:", String::from_utf8_lossy(text));
    for m in &matches {
        println!(
            "  [{:>2}..{:>2}] {}",
            m.start,
            m.end,
            ac.patterns().as_str(m.pattern)
        );
    }

    // 3. The same dictionary on the simulated GTX 285.
    let cfg = GpuConfig::gtx285();
    let matcher = GpuAcMatcher::new(cfg, KernelParams::defaults_for(&cfg), ac)?;
    println!(
        "\nsimulated GTX 285 ({} SMs, {} cores):",
        cfg.num_sms,
        cfg.num_sms * cfg.cores_per_sm
    );
    for approach in [Approach::GlobalOnly, Approach::SharedDiagonal] {
        let run = matcher.run(text, approach)?;
        let mut want = matcher.automaton().find_all(text);
        want.sort();
        assert_eq!(run.matches, want);
        println!(
            "  {:>16}: {} matches, {} simulated cycles ({:.3} us at {:.2} GHz)",
            approach.label(),
            run.matches.len(),
            run.stats.cycles,
            run.seconds() * 1e6,
            cfg.clock_hz / 1e9,
        );
    }
    println!("\nboth kernels agree with the serial matcher — see `repro` for the full figures");
    Ok(())
}
